"""Tests for what-if aggregate recomputation and the textual ProQL."""

import pytest

from repro.datamodel import FieldType, Relation, Schema
from repro.errors import QueryError
from repro.graph import GraphBuilder, NodeKind
from repro.piglatin import Interpreter, UDFRegistry
from repro.queries import run_query, what_if_deleted

CARS = Schema.of(("CarId", FieldType.CHARARRAY),
                 ("Model", FieldType.CHARARRAY))


@pytest.fixture
def counted_cars():
    """GROUP + COUNT over the Example 2.3 inventory, tracked."""
    env = {"Cars": Relation.from_values(CARS, [
        ("C1", "Accord"), ("C2", "Civic"), ("C3", "Civic")])}
    builder = GraphBuilder()
    builder.begin_invocation("Mdealer1")
    result = Interpreter(builder).execute("""
ByModel = GROUP Cars BY Model;
Counts = FOREACH ByModel GENERATE group AS Model, COUNT(Cars) AS N;
""", env)
    builder.end_invocation()
    return builder.graph, env, result


class TestWhatIf:
    def _car_label(self, graph, env, car_id):
        for row in env["Cars"].rows:
            if row.values[0] == car_id:
                return graph.node(row.prov).label
        raise AssertionError(car_id)

    def test_example_4_3_count_recomputed(self, counted_cars):
        # Deleting C2: the Civic COUNT re-collapses from 2 to 1.
        graph, env, _result = counted_cars
        label = self._car_label(graph, env, "C2")
        outcome = what_if_deleted(graph, tuple_labels=[label])
        assert len(outcome.changes) == 1
        change = outcome.changes[0]
        assert change.op == "Count"
        assert change.old_value == 2
        assert change.new_value == 1
        assert change.surviving_inputs == 1
        # The residual graph carries the recomputed value.
        assert outcome.graph.node(change.node_id).value == 1

    def test_unaffected_aggregates_unchanged(self, counted_cars):
        graph, env, _result = counted_cars
        label = self._car_label(graph, env, "C2")
        outcome = what_if_deleted(graph, tuple_labels=[label])
        accord_counts = [node for node in
                         outcome.graph.nodes_of_kind(NodeKind.AGG)
                         if node.value == 1
                         and node.node_id not in
                         {change.node_id for change in outcome.changes}]
        assert accord_counts  # the Accord count survives untouched

    def test_deleting_all_members_kills_aggregate(self, counted_cars):
        graph, env, _result = counted_cars
        labels = [self._car_label(graph, env, car) for car in ("C2", "C3")]
        outcome = what_if_deleted(graph, tuple_labels=labels)
        # The Civic COUNT node itself is deleted (all tensors died),
        # so no change is reported for it.
        assert all(change.old_value != 2 for change in outcome.changes)

    def test_stale_blackboxes_reported(self):
        env = {"Cars": Relation.from_values(CARS, [
            ("C1", "Civic"), ("C2", "Civic")])}
        udfs = UDFRegistry()
        udfs.register("Appraise", lambda bag: 1000 * len(bag))
        builder = GraphBuilder()
        builder.begin_invocation("M")
        Interpreter(builder, udfs).execute("""
ByModel = GROUP Cars BY Model;
Prices = FOREACH ByModel GENERATE group, Appraise(Cars) AS P;
""", env)
        builder.end_invocation()
        graph = builder.graph
        label = graph.node(env["Cars"].rows[0].prov).label
        outcome = what_if_deleted(graph, tuple_labels=[label])
        assert len(outcome.stale_blackboxes) == 1

    def test_repr(self, counted_cars):
        graph, env, _result = counted_cars
        label = self._car_label(graph, env, "C2")
        outcome = what_if_deleted(graph, tuple_labels=[label])
        assert "changed_aggregates=1" in repr(outcome)
        assert "→" in repr(outcome.changes[0])
        assert outcome.change_for(outcome.changes[0].node_id) is not None
        assert outcome.change_for(-1) is None

    def test_what_if_on_dealership(self, dealership_execution):
        graph, _outputs, _run, _executor = dealership_execution
        victim = next(node.label for node in
                      graph.nodes_of_kind(NodeKind.TUPLE)
                      if "Cars" in node.label)
        outcome = what_if_deleted(graph, tuple_labels=[victim])
        # Every changed aggregate re-collapsed to a sensible value.
        for change in outcome.changes:
            assert change.new_value is not None or change.surviving_inputs == 0


class TestTextualProQL:
    def test_match_with_filters(self, counted_cars):
        graph, _env, _result = counted_cars
        ids = run_query(graph, "MATCH kind=tuple module=Mdealer1")
        assert len(ids) == 3

    def test_traversal_pipeline(self, counted_cars):
        graph, env, result = counted_cars
        civic = next(row for row in result.relation("Counts").rows
                     if row.values[0] == "Civic")
        labels = run_query(graph, f"NODE {civic.prov} | ancestors | "
                                  "kind=tuple | labels")
        assert len(labels) == 2  # C2 and C3

    def test_terminals(self, counted_cars):
        graph, _env, _result = counted_cars
        assert run_query(graph, "MATCH kind=tuple | count") == 3
        assert isinstance(run_query(graph, "MATCH kind=agg | values"), list)
        assert run_query(graph, "MATCH kind=module | labels") == ["Mdealer1"]

    def test_label_filters(self, counted_cars):
        graph, _env, _result = counted_cars
        assert run_query(graph, "MATCH label~Cars | count") == 3

    def test_ptype_filters(self, counted_cars):
        graph, _env, _result = counted_cars
        p_count = run_query(graph, "MATCH ptype=p | count")
        v_count = run_query(graph, "MATCH ptype=v | count")
        assert p_count + v_count == graph.node_count

    def test_children_parents(self, counted_cars):
        graph, env, _result = counted_cars
        base = env["Cars"].rows[0].prov
        children = run_query(graph, f"NODE {base} | children")
        assert children
        back = run_query(graph, f"NODE {children[0]} | parents")
        assert base in back

    def test_errors(self, counted_cars):
        graph, _env, _result = counted_cars
        for bad in ("", "FETCH x", "NODE", "NODE xyz",
                    "MATCH kind=wat", "MATCH | nope=1",
                    "MATCH kind=tuple | count | labels",
                    "MATCH invocation=xy", "MATCH kind=tuple | "):
            with pytest.raises(QueryError):
                run_query(graph, bad)

    def test_invocation_filter(self, counted_cars):
        graph, _env, _result = counted_cars
        invocation = next(iter(graph.invocations))
        ids = run_query(graph, f"MATCH invocation={invocation}")
        assert ids
