"""Tests for the extension features: the precomputed reachability
index (§5.1 trade-off), bounded-loop unfolding (§2.2 / future work),
and semiring-valued graph analyses (trust / security / cost)."""

import pytest

from repro.datamodel import FieldType, Schema
from repro.errors import UnknownNodeError, WorkflowDefinitionError
from repro.graph import GraphBuilder, NodeKind
from repro.provenance import BOOLEAN, SECURITY, TROPICAL
from repro.queries import (
    GraphValuator,
    ReachabilityIndex,
    derivation_cost,
    evaluate_node,
    required_clearance,
    subgraph_query,
    trust_assessment,
)
from repro.workflow import (
    LoopSpec,
    Module,
    ModuleRegistry,
    Workflow,
    WorkflowExecutor,
    unfold_workflow,
)


# ----------------------------------------------------------------------
# ReachabilityIndex
# ----------------------------------------------------------------------
class TestReachabilityIndex:
    @pytest.fixture
    def diamond(self):
        builder = GraphBuilder()
        builder.begin_invocation("M")
        a = builder.base_tuple_node("R")
        b = builder.plus_node([a])
        c = builder.plus_node([a])
        d = builder.times_node([b, c])
        builder.end_invocation()
        return builder.graph, (a, b, c, d)

    def test_descendants(self, diamond):
        graph, (a, b, c, d) = diamond
        index = ReachabilityIndex(graph)
        assert index.descendants(a) == {b, c, d}
        assert index.descendants(d) == frozenset()

    def test_ancestors(self, diamond):
        graph, (a, b, c, d) = diamond
        index = ReachabilityIndex(graph)
        assert index.ancestors(d) == {a, b, c}

    def test_ancestors_fallback_without_index(self, diamond):
        graph, (a, _b, _c, d) = diamond
        index = ReachabilityIndex(graph, index_ancestors=False)
        assert a in index.ancestors(d)

    def test_reachable(self, diamond):
        graph, (a, _b, _c, d) = diamond
        index = ReachabilityIndex(graph)
        assert index.reachable(a, d)
        assert index.reachable(a, a)
        assert not index.reachable(d, a)

    def test_unknown_node(self, diamond):
        graph, _nodes = diamond
        index = ReachabilityIndex(graph)
        with pytest.raises(UnknownNodeError):
            index.descendants(999)
        with pytest.raises(UnknownNodeError):
            index.ancestors(999)

    def test_memory_cells_positive(self, diamond):
        graph, _nodes = diamond
        index = ReachabilityIndex(graph)
        assert index.memory_cells() > 0
        assert "cells" in repr(index)

    def test_indexed_subgraph_matches_traversal(self, dealership_execution):
        graph, _outputs, _run, _executor = dealership_execution
        index = ReachabilityIndex(graph)
        from repro.queries import highest_fanout_nodes
        for node in highest_fanout_nodes(graph, 10):
            indexed = index.subgraph(node)
            traversed = subgraph_query(graph, node)
            assert indexed.node_ids == traversed.node_ids


# ----------------------------------------------------------------------
# Loop unfolding
# ----------------------------------------------------------------------
ITEMS = Schema.of(("Item", FieldType.CHARARRAY), ("Qty", FieldType.INT))


def _looped_workflow():
    """src → body (refine) → sink, with a conceptual body self-loop."""
    modules = ModuleRegistry()
    modules.add(Module("Msrc", output_schemas={"Items": ITEMS}))
    modules.add(Module(
        "Mrefine",
        input_schemas={"Items": ITEMS},
        output_schemas={"Refined": ITEMS},
        q_out="Refined = FOREACH Items GENERATE Item, Qty + 1 AS Qty;"))
    modules.add(Module(
        "Mglue",
        input_schemas={"Refined": ITEMS},
        output_schemas={"Items": ITEMS},
        q_out="Items = FOREACH Refined GENERATE Item, Qty;"))
    modules.add(Module(
        "Msink",
        input_schemas={"Refined": ITEMS},
        output_schemas={"Final": ITEMS},
        q_out="Final = FOREACH Refined GENERATE Item, Qty;"))
    workflow = Workflow("refinement")
    workflow.add_node("src", "Msrc", is_input=True)
    workflow.add_node("refine", "Mrefine")
    workflow.add_node("glue", "Mglue")
    workflow.add_node("sink", "Msink", is_output=True)
    workflow.add_edge("src", "refine", ["Items"])
    workflow.add_edge("refine", "glue", ["Refined"])
    workflow.add_edge("refine", "sink", ["Refined"])
    return workflow, modules


class TestLoopUnfolding:
    def test_unfolds_to_valid_dag(self):
        workflow, modules = _looped_workflow()
        loop = LoopSpec(body=["refine", "glue"],
                        back_edge=("glue", "refine", ["Items"]),
                        iterations=3)
        unfolded = unfold_workflow(workflow, loop)
        unfolded.validate(modules)
        # 2 fixed nodes + 2 body nodes × 3 iterations.
        assert len(unfolded.node_labels) == 2 + 2 * 3

    def test_iterations_chain(self):
        workflow, modules = _looped_workflow()
        loop = LoopSpec(body=["refine", "glue"],
                        back_edge=("glue", "refine", ["Items"]),
                        iterations=3)
        unfolded = unfold_workflow(workflow, loop)
        order = unfolded.topological_order()
        assert order.index("refine") < order.index("refine#1")
        assert order.index("refine#1") < order.index("refine#2")

    def test_execution_applies_body_n_times(self):
        workflow, modules = _looped_workflow()
        loop = LoopSpec(body=["refine", "glue"],
                        back_edge=("glue", "refine", ["Items"]),
                        iterations=4)
        unfolded = unfold_workflow(workflow, loop)
        executor = WorkflowExecutor(unfolded, modules)
        output = executor.execute({"src": {"Items": [("widget", 0)]}})
        final = output.outputs_of("sink")["Final"]
        # Four refinements: Qty 0 → 4.
        assert final.value_rows() == [("widget", 4)]

    def test_single_iteration_is_identity_shape(self):
        workflow, modules = _looped_workflow()
        loop = LoopSpec(body=["refine", "glue"],
                        back_edge=("glue", "refine", ["Items"]),
                        iterations=1)
        unfolded = unfold_workflow(workflow, loop)
        assert set(unfolded.node_labels) == set(workflow.node_labels)

    def test_provenance_spans_iterations(self):
        workflow, modules = _looped_workflow()
        loop = LoopSpec(body=["refine", "glue"],
                        back_edge=("glue", "refine", ["Items"]),
                        iterations=2)
        unfolded = unfold_workflow(workflow, loop)
        builder = GraphBuilder()
        executor = WorkflowExecutor(unfolded, modules, builder)
        output = executor.execute({"src": {"Items": [("widget", 0)]}})
        final = output.outputs_of("sink")["Final"].rows[0]
        ancestors = builder.graph.ancestors(final.prov)
        labels = {builder.graph.node(a).label for a in ancestors}
        # The final tuple's lineage crosses both refine invocations.
        assert "Mrefine" in labels
        assert len(builder.graph.invocations_of("Mrefine")) == 2

    def test_bad_specs(self):
        workflow, _modules = _looped_workflow()
        with pytest.raises(WorkflowDefinitionError):
            LoopSpec(body=[], back_edge=("a", "b", ["R"]), iterations=1)
        with pytest.raises(WorkflowDefinitionError):
            LoopSpec(body=["refine"], back_edge=("glue", "refine", ["R"]),
                     iterations=2)
        with pytest.raises(WorkflowDefinitionError):
            LoopSpec(body=["refine", "glue"],
                     back_edge=("glue", "refine", ["Items"]), iterations=0)
        # body references an unknown node
        bad = LoopSpec(body=["nope", "glue"],
                       back_edge=("glue", "nope", ["Items"]), iterations=2)
        with pytest.raises(WorkflowDefinitionError):
            unfold_workflow(workflow, bad)


# ----------------------------------------------------------------------
# Semiring-valued analyses
# ----------------------------------------------------------------------
class TestGraphValuation:
    @pytest.fixture
    def alt_graph(self):
        """out = +( ·(a, b), c ): two alternative derivations."""
        builder = GraphBuilder()
        builder.begin_invocation("M")
        a = builder.base_tuple_node("R")
        b = builder.base_tuple_node("R")
        c = builder.base_tuple_node("R")
        joint = builder.times_node([a, b])
        out = builder.plus_node([joint, c])
        builder.end_invocation()
        graph = builder.graph
        labels = {name: graph.node(node).label
                  for name, node in (("a", a), ("b", b), ("c", c))}
        return graph, out, labels

    def test_trust_assessment(self, alt_graph):
        graph, out, labels = alt_graph
        # Distrust a: the c-alternative still supports out.
        assert trust_assessment(graph, out, [labels["a"]])
        # Distrust both alternatives: out is no longer trusted.
        assert not trust_assessment(graph, out, [labels["a"], labels["c"]])

    def test_required_clearance(self, alt_graph):
        graph, out, labels = alt_graph
        levels = {labels["a"]: SECURITY.SECRET,
                  labels["b"]: SECURITY.CONFIDENTIAL,
                  labels["c"]: SECURITY.TOP_SECRET}
        # Cheapest path: via ·(a,b) requires SECRET; via c TOP_SECRET.
        assert required_clearance(graph, out, levels) == SECURITY.SECRET

    def test_derivation_cost(self, alt_graph):
        graph, out, labels = alt_graph
        costs = {labels["a"]: 1.0, labels["b"]: 2.0, labels["c"]: 10.0}
        # min(1 + 2, 10) = 3.
        assert derivation_cost(graph, out, costs) == 3.0

    def test_delta_and_agg_nodes_evaluate(self, dealership_execution):
        graph, outputs, _run, _executor = dealership_execution
        best = outputs[0].outputs_of("agg")["BestBids"].rows[0]
        # Every node type in a real execution evaluates without error.
        assert evaluate_node(graph, best.prov, BOOLEAN, default=True) is True
        assert derivation_cost(graph, best.prov, {}, default_cost=0.0) >= 0.0

    def test_valuator_memoizes(self, alt_graph):
        graph, out, _labels = alt_graph
        valuator = GraphValuator(graph, TROPICAL, {}, default=1.0)
        first = valuator.value_of(out)
        assert valuator.value_of(out) == first

    def test_boolean_matches_deletion(self, dealership_execution):
        """Trust with distrusted = deleted tuples agrees with deletion
        propagation on p-node survival (for multiplicative paths)."""
        from repro.queries import delete_base_tuples

        graph, outputs, _run, _executor = dealership_execution
        victim = next(node.label for node in
                      graph.nodes_of_kind(NodeKind.WORKFLOW_INPUT)
                      if "Mreq" in node.label)
        outcome = delete_base_tuples(graph, [victim])
        best = outputs[0].outputs_of("agg")["BestBids"].rows[0]
        survived = outcome.survived(best.prov)
        trusted = trust_assessment(graph, best.prov, [victim])
        assert survived == trusted
