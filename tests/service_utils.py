"""Shared helpers for the service test suites (not collected).

A tiny asyncio HTTP client plus a harness that runs one coroutine
against a live :class:`~repro.service.server.ResilientServer` bound to
an ephemeral port.  Everything is in-process — the tests exercise the
real TCP path without fixed ports or subprocesses.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.graph.nodes import NodeKind
from repro.graph.provgraph import ProvenanceGraph
from repro.service import ResilientServer, ServiceConfig


class Response:
    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: dict, body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    @property
    def json(self):
        return json.loads(self.body)

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def __repr__(self) -> str:
        return f"Response({self.status}, {self.body[:80]!r})"


async def http_get(host: str, port: int, path: str,
                   headers: Optional[dict] = None) -> Response:
    """One GET over its own connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await request_on(reader, writer, path, headers,
                                close=True)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def request_on(reader, writer, path: str,
                     headers: Optional[dict] = None, close: bool = False,
                     method: str = "GET") -> Response:
    """One request on an existing (keep-alive) connection."""
    lines = [f"{method} {path} HTTP/1.1", "Host: test"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    if close:
        lines.append("Connection: close")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode())
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    response_headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").strip().partition(":")
        response_headers[name.strip().lower()] = value.strip()
    body = b""
    length = response_headers.get("content-length")
    if length:
        body = await reader.readexactly(int(length))
    return Response(status, response_headers, body)


def with_server(service, config: ServiceConfig, scenario):
    """Run ``await scenario(host, port, server)`` against a live
    server; returns whatever the scenario returns."""

    async def main():
        server = ResilientServer(service, config)
        host, port = await server.start()
        try:
            return await scenario(host, port, server)
        finally:
            await server.stop()

    return asyncio.run(main())


def chain_graph(n: int) -> ProvenanceGraph:
    graph = ProvenanceGraph()
    ids = [graph.add_node(NodeKind.TUPLE, f"t{i}") for i in range(n)]
    for i in range(1, n):
        graph.add_edge(ids[i - 1], ids[i])
    return graph


def diamond_graph(width: int) -> ProvenanceGraph:
    """source -> w parallel middles -> sink (plus a sibling spur)."""
    graph = ProvenanceGraph()
    source = graph.add_node(NodeKind.TUPLE, "source")
    sink = graph.add_node(NodeKind.TUPLE, "sink")
    for i in range(width):
        middle = graph.add_node(NodeKind.TUPLE, f"m{i}")
        graph.add_edge(source, middle)
        graph.add_edge(middle, sink)
    return graph
