"""The HTTP front end: routing, admission, deadlines, healthz.

Each test runs a real :class:`~repro.service.ResilientServer` on an
ephemeral port and talks to it over TCP.  Correctness is always
checked against the in-process graph — the server may shed or time
out, but a 200 must carry the same answer the kernels give.
"""

from __future__ import annotations

import asyncio

import pytest

from service_utils import (chain_graph, http_get, request_on, with_server,
                           ServiceConfig)

from repro import faults, obs
from repro.store.catalog import ProvenanceService, RunCatalog
from repro.store.memory import MemoryStore

N = 4000


@pytest.fixture(autouse=True)
def clean_faults():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def store_and_run():
    store = MemoryStore()
    catalog = RunCatalog(store)
    info = catalog.register(chain_graph(N))
    return store, info.run_id


@pytest.fixture
def service(store_and_run):
    store, _ = store_and_run
    return ProvenanceService(store)


@pytest.fixture
def run_id(store_and_run):
    return store_and_run[1]


def quiet_config(**overrides) -> ServiceConfig:
    config = ServiceConfig(port=0)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class TestRouting:
    def test_query_endpoints_match_graph_truth(self, service, run_id):
        graph = service.graph(run_id)

        async def scenario(host, port, server):
            sub = await http_get(host, port,
                                 f"/v1/runs/{run_id}/subgraph?node=1&ids=1")
            anc = await http_get(host, port,
                                 f"/v1/runs/{run_id}/ancestors?node=7&ids=1")
            desc = await http_get(
                host, port, f"/v1/runs/{run_id}/descendants?node="
                            f"{N - 5}&ids=1")
            reach = await http_get(
                host, port,
                f"/v1/runs/{run_id}/reachable?source=0&target={N - 1}")
            unreach = await http_get(
                host, port,
                f"/v1/runs/{run_id}/reachable?source={N - 1}&target=0")
            dele = await http_get(host, port,
                                  f"/v1/runs/{run_id}/deletion?nodes=0"
                                  f"&ids=1")
            stats = await http_get(host, port, f"/v1/runs/{run_id}/stats")
            return sub, anc, desc, reach, unreach, dele, stats

        sub, anc, desc, reach, unreach, dele, stats = with_server(
            service, quiet_config(), scenario)
        for response in (sub, anc, desc, reach, unreach, dele, stats):
            assert response.status == 200
            assert response.json["degraded"] is False
        assert sub.json["ancestor_ids"] == sorted(graph.ancestors(1))
        assert sub.json["descendant_ids"] == sorted(graph.descendants(1))
        assert anc.json["ids"] == sorted(graph.ancestors(7))
        assert desc.json["ids"] == sorted(graph.descendants(N - 5))
        assert reach.json["reachable"] is True
        assert unreach.json["reachable"] is False
        assert dele.json["count"] == N  # chain: deleting the root
        assert stats.json["node_count"] == N

    def test_runs_listing(self, service, run_id):
        async def scenario(host, port, server):
            return await http_get(host, port, "/runs")

        response = with_server(service, quiet_config(), scenario)
        assert response.status == 200
        listed = [entry["run_id"] for entry in response.json["runs"]]
        assert run_id in listed
        assert response.json["degraded_listing"] is False

    def test_client_errors(self, service, run_id):
        async def scenario(host, port, server):
            return [
                await http_get(host, port,
                               f"/v1/runs/{run_id}/subgraph"),  # no node
            await http_get(host, port,
                           f"/v1/runs/{run_id}/subgraph?node=zap"),
                await http_get(host, port, "/v1/runs/no-such-run/stats"),
                await http_get(host, port,
                               f"/v1/runs/{run_id}/subgraph?node=999999"),
                await http_get(host, port, f"/v1/runs/{run_id}/florp?n=1"),
                await http_get(host, port, "/totally/unknown"),
                await http_get(host, port, f"/v1/runs/{run_id}/subgraph"
                                           f"?node=1",
                               headers={"X-Deadline-Ms": "soon"}),
            ]

        responses = with_server(service, quiet_config(), scenario)
        expected = [400, 400, 404, 404, 404, 404, 400]
        assert [r.status for r in responses] == expected
        for response in responses:
            assert "error" in response.json

    def test_post_is_rejected(self, service, run_id):
        async def scenario(host, port, server):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                return await request_on(reader, writer, "/runs",
                                        close=True, method="POST")
            finally:
                writer.close()

        response = with_server(service, quiet_config(), scenario)
        assert response.status == 405

    def test_keep_alive_serves_multiple_requests(self, service, run_id):
        async def scenario(host, port, server):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                first = await request_on(reader, writer, "/healthz")
                second = await request_on(
                    reader, writer, f"/v1/runs/{run_id}/stats")
                return first, second
            finally:
                writer.close()

        first, second = with_server(service, quiet_config(), scenario)
        assert first.status == 200
        assert second.status == 200
        assert second.json["node_count"] == N


class TestDeadlines:
    def test_kernel_deadline_maps_to_504_with_partial_plan(
            self, service, run_id):
        service.graph(run_id)  # hot: the kernel path serves directly

        async def scenario(host, port, server):
            with faults.injecting("service.handle:latency:secs=0.05"):
                return await http_get(
                    host, port, f"/v1/runs/{run_id}/subgraph?node=1",
                    headers={"X-Deadline-Ms": "20"})

        response = with_server(service, quiet_config(), scenario)
        assert response.status == 504
        payload = response.json
        assert "deadline" in payload["error"]
        assert payload["deadline_ms"] == pytest.approx(20.0, rel=0.2)
        assert payload["partial_plan"]["kind"] == "service.subgraph"

    def test_deadline_disabled_with_zero_budget(self, service, run_id):
        async def scenario(host, port, server):
            with faults.injecting("service.handle:latency:secs=0.03"):
                return await http_get(
                    host, port, f"/v1/runs/{run_id}/stats",
                    headers={"X-Deadline-Ms": "0"})

        response = with_server(service, quiet_config(), scenario)
        assert response.status == 200

    def test_deadline_expires_while_queued(self, service, run_id):
        config = quiet_config(max_inflight=1, queue_depth=8)

        async def scenario(host, port, server):
            with faults.injecting("service.handle:latency:secs=0.3"):
                slow = asyncio.create_task(http_get(
                    host, port, f"/v1/runs/{run_id}/stats",
                    headers={"X-Deadline-Ms": "2000"}))
                await asyncio.sleep(0.05)  # occupy the only worker
                queued = await http_get(
                    host, port, f"/v1/runs/{run_id}/stats",
                    headers={"X-Deadline-Ms": "60"})
                return queued, await slow

        queued, slow = with_server(service, config, scenario)
        assert slow.status == 200
        assert queued.status == 504
        assert "queued" in queued.json["error"]


class TestAdmission:
    def test_overload_sheds_429_with_retry_after(self, service, run_id):
        config = quiet_config(max_inflight=1, queue_depth=0)

        async def scenario(host, port, server):
            with faults.injecting("service.handle:latency:secs=0.25"):
                tasks = [asyncio.create_task(http_get(
                    host, port, f"/v1/runs/{run_id}/stats"))
                    for _ in range(5)]
                # Stagger so exactly one is in flight before the burst.
                return await asyncio.gather(*tasks)

        responses = with_server(service, config, scenario)
        statuses = sorted(r.status for r in responses)
        assert statuses.count(429) >= 3  # depth 0: only 1 can execute
        assert statuses.count(200) >= 1
        shed = [r for r in responses if r.status == 429]
        for response in shed:
            assert response.json["shed"] is True
            assert int(response.headers["retry-after"]) >= 1

    def test_tenant_rate_limit_isolates_tenants(self, service, run_id):
        config = quiet_config(tenant_rate=0.1, tenant_burst=1)

        async def scenario(host, port, server):
            first = await http_get(host, port,
                                   f"/v1/runs/{run_id}/stats",
                                   headers={"X-Tenant": "greedy"})
            second = await http_get(host, port,
                                    f"/v1/runs/{run_id}/stats",
                                    headers={"X-Tenant": "greedy"})
            other = await http_get(host, port,
                                   f"/v1/runs/{run_id}/stats",
                                   headers={"X-Tenant": "patient"})
            return first, second, other

        first, second, other = with_server(service, config, scenario)
        assert first.status == 200
        assert second.status == 429
        assert "tenant-rate" in second.json["error"]
        assert other.status == 200  # another tenant is unaffected


class TestHealthAndMetrics:
    def test_healthz_reports_state(self, service, run_id):
        async def scenario(host, port, server):
            await http_get(host, port, f"/v1/runs/{run_id}/stats")
            return await http_get(host, port, "/healthz")

        response = with_server(service, quiet_config(), scenario)
        assert response.status == 200
        payload = response.json
        assert payload["status"] == "ok"
        assert payload["admission"]["max_inflight"] >= 1
        assert payload["admission"]["admitted_total"] >= 1
        assert payload["singleflight"]["inflight"] == 0
        assert "caches" in payload
        assert payload["responses_by_status"].get("200", 0) >= 1

    def test_metrics_endpoint_exposes_prometheus(self, service, run_id):
        async def scenario(host, port, server):
            await http_get(host, port, f"/v1/runs/{run_id}/stats")
            return await http_get(host, port, "/metrics")

        telemetry = obs.enable()
        try:
            response = with_server(service, quiet_config(), scenario)
        finally:
            obs.disable()
        assert response.status == 200
        assert "service_requests_total" in response.text

    def test_metrics_endpoint_degrades_without_telemetry(self, service):
        async def scenario(host, port, server):
            return await http_get(host, port, "/metrics")

        response = with_server(service, quiet_config(), scenario)
        assert response.status == 200
        assert "REPRO_OBS" in response.json["hint"]


class TestSingleflight:
    def test_cold_storm_builds_snapshot_once(self, store_and_run):
        store, run_id = store_and_run
        service = ProvenanceService(store)  # fresh: all caches cold

        async def scenario(host, port, server):
            with faults.injecting("service.snapshot:latency:secs=0.05"):
                responses = await asyncio.gather(*[
                    http_get(host, port,
                             f"/v1/runs/{run_id}/ancestors?node=50")
                    for _ in range(12)])
            return responses, server.flight.snapshot()

        responses, flight = with_server(service, quiet_config(), scenario)
        assert [r.status for r in responses] == [200] * 12
        assert {r.json["count"] for r in responses} == {50}
        # Exactly one build; concurrent requests coalesced onto it and
        # stragglers found the cache already warm (either is fine —
        # what must never happen is a second build).
        assert flight["builds"] == 1
        assert flight["coalesced"] >= 1
