"""Tests for the Car dealerships benchmark workload."""

import pytest

from repro.benchmark.datasets import (
    GERMAN_CAR_MODELS,
    Buyer,
    car_inventory,
    model_base_price,
    random_buyer,
    stable_hash,
)
from repro.benchmark.dealerships import (
    DealershipRun,
    build_dealership_workflow,
    calc_bid,
    pick_car,
)
from repro.datamodel import Bag, FieldType, Relation, Schema
from repro.graph import GraphBuilder, NodeKind
from repro.workflow import WorkflowExecutor


class TestDatasets:
    def test_stable_hash_deterministic(self):
        assert stable_hash("x") == stable_hash("x")
        assert stable_hash("x") != stable_hash("y")

    def test_twelve_models(self):
        assert len(GERMAN_CAR_MODELS) == 12

    def test_inventory_split(self):
        per_dealer = car_inventory(40, 4, seed=1)
        assert len(per_dealer) == 4
        assert sum(len(cars) for cars in per_dealer) == 40
        all_ids = [car_id for cars in per_dealer for car_id, _m in cars]
        assert len(set(all_ids)) == 40

    def test_inventory_models_valid(self):
        for cars in car_inventory(20, 4, seed=2):
            for _car_id, model in cars:
                assert model in GERMAN_CAR_MODELS

    def test_inventory_seeded(self):
        assert car_inventory(20, seed=3) == car_inventory(20, seed=3)
        assert car_inventory(20, seed=3) != car_inventory(20, seed=4)

    def test_base_price_range(self):
        for model in GERMAN_CAR_MODELS:
            assert 18_000 <= model_base_price(model) <= 29_000

    def test_random_buyer_seeded(self):
        assert random_buyer(7).model == random_buyer(7).model
        buyer = random_buyer(7)
        assert 0.3 <= buyer.accept_probability <= 0.9


def _bag(schema, rows):
    return Bag(Relation.from_values(schema, rows))


REQ = Schema.of("UserId", "BidId", "Model", "Phase", "DealerId")
NUM = Schema.of("Model", ("NumAvail", FieldType.INT))
BIDS = Schema.of("DealerId", "BidId", "UserId", "Model",
                 ("Amount", FieldType.INT))


class TestCalcBid:
    def test_basic_bid(self):
        bids = calc_bid(
            _bag(REQ, [("P1", "B1", "Golf", "bid", "any")]),
            _bag(NUM, [("Golf", 3)]),
            _bag(Schema.of("Model", ("NumSold", FieldType.INT)), []),
            _bag(BIDS, []))
        assert len(bids) == 1
        bid_id, user, model, amount = bids[0]
        assert (bid_id, user, model) == ("B1", "P1", "Golf")
        assert amount == model_base_price("Golf") - 450

    def test_no_inventory_no_bid(self):
        bids = calc_bid(
            _bag(REQ, [("P1", "B1", "Golf", "bid", "any")]),
            _bag(NUM, []), _bag(NUM, []), _bag(BIDS, []))
        assert bids == []

    def test_no_request_no_bid(self):
        assert calc_bid(_bag(REQ, []), _bag(NUM, [("Golf", 1)]),
                        _bag(NUM, []), _bag(BIDS, [])) == []

    def test_bid_history_lowers_bid(self):
        # "a bid of the same or lower amount" on repeated requests.
        first = calc_bid(
            _bag(REQ, [("P1", "B1", "Golf", "bid", "any")]),
            _bag(NUM, [("Golf", 3)]), _bag(NUM, []), _bag(BIDS, []))
        prior_amount = first[0][3]
        second = calc_bid(
            _bag(REQ, [("P1", "B2", "Golf", "bid", "any")]),
            _bag(NUM, [("Golf", 3)]), _bag(NUM, []),
            _bag(BIDS, [("dealer1", "B1", "P1", "Golf", prior_amount)]))
        assert second[0][3] < prior_amount

    def test_price_floor(self):
        bids = calc_bid(
            _bag(REQ, [("P1", "B9", "Golf", "bid", "any")]),
            _bag(NUM, [("Golf", 3)]), _bag(NUM, []),
            _bag(BIDS, [("dealer1", "B1", "P1", "Golf", 5100)]))
        assert bids[0][3] == 5_000


class TestPickCar:
    CARS_JOINED = Schema.of("CarId", "Model")
    SOLD = Schema.of("CarId", "BidId")
    BUYS = Schema.of("UserId", "BidId", "Model", "Phase", "DealerId")

    def test_picks_first_available(self):
        sold = pick_car(
            _bag(self.BUYS, [("P1", "B1", "Golf", "buy", "dealer1")]),
            _bag(self.CARS_JOINED, [("C5", "Golf"), ("C2", "Golf")]),
            _bag(self.SOLD, []))
        assert sold == [("C2", "B1")]

    def test_skips_sold_cars(self):
        sold = pick_car(
            _bag(self.BUYS, [("P1", "B1", "Golf", "buy", "dealer1")]),
            _bag(self.CARS_JOINED, [("C2", "Golf"), ("C5", "Golf")]),
            _bag(self.SOLD, [("C2", "B0")]))
        assert sold == [("C5", "B1")]

    def test_nothing_available(self):
        assert pick_car(
            _bag(self.BUYS, [("P1", "B1", "Golf", "buy", "dealer1")]),
            _bag(self.CARS_JOINED, []), _bag(self.SOLD, [])) == []

    def test_all_sold(self):
        assert pick_car(
            _bag(self.BUYS, [("P1", "B1", "Golf", "buy", "dealer1")]),
            _bag(self.CARS_JOINED, [("C2", "Golf")]),
            _bag(self.SOLD, [("C2", "B0")])) == []


class TestDealershipWorkflow:
    def test_workflow_validates(self):
        workflow, modules = build_dealership_workflow()
        assert len(workflow.node_labels) == 14  # 2 inputs + 12 modules
        assert workflow.input_nodes == {"req", "choice"}
        assert workflow.output_nodes == {"car"}

    def test_dealers_invoked_twice_per_execution(self):
        workflow, modules = build_dealership_workflow()
        builder = GraphBuilder()
        executor = WorkflowExecutor(workflow, modules, builder)
        run = DealershipRun(num_cars=8, num_exec=1, seed=0)
        run.run(executor)
        assert len(builder.graph.invocations_of("Mdealer1")) == 2

    def test_bids_decrease_on_repeated_declines(self):
        # The paper: "each dealer will consult its bid history and
        # will generate a bid of the same or lower amount."
        workflow, modules = build_dealership_workflow()
        executor = WorkflowExecutor(workflow, modules)
        run = DealershipRun(num_cars=40, num_exec=4, seed=9)
        run.buyer.accept_probability = 0.0
        state = run.initial_state(executor)
        outputs = run.run(executor, state)
        amounts = []
        for output in outputs:
            best = output.outputs_of("agg")["BestBids"]
            if best.rows:
                amounts.append(best.rows[0].values[4])
        assert len(amounts) >= 2
        assert all(later < earlier
                   for earlier, later in zip(amounts, amounts[1:]))

    def test_purchase_updates_sold_cars(self):
        workflow, modules = build_dealership_workflow()
        executor = WorkflowExecutor(workflow, modules)
        run = DealershipRun(num_cars=40, num_exec=10, seed=1)
        run.buyer.accept_probability = 1.0
        run.buyer.reserve_price = 10 ** 9  # always above any bid
        state = run.initial_state(executor)
        run.run(executor, state)
        assert run.purchase is not None
        car_id, bid_id = run.purchase
        sold = [relation for name, relation
                in ((f"Mdealer{i}", state.of(f"Mdealer{i}")["SoldCars"])
                    for i in range(1, 5))
                if len(relation)]
        assert len(sold) == 1
        assert sold[0].value_rows() == [(car_id, bid_id)]

    def test_losing_dealers_unchanged(self):
        workflow, modules = build_dealership_workflow()
        executor = WorkflowExecutor(workflow, modules)
        run = DealershipRun(num_cars=40, num_exec=10, seed=1)
        run.buyer.accept_probability = 1.0
        run.buyer.reserve_price = 10 ** 9
        state = run.initial_state(executor)
        outputs = run.run(executor, state)
        winner = outputs[-1].outputs_of("agg")["BestBids"].rows[0].values[0]
        for index in range(1, 5):
            name = f"dealer{index}"
            sold = state.of(f"Mdealer{index}")["SoldCars"]
            if name == winner:
                assert len(sold) == 1
            else:
                assert len(sold) == 0

    def test_best_bid_is_minimum(self):
        workflow, modules = build_dealership_workflow()
        executor = WorkflowExecutor(workflow, modules)
        run = DealershipRun(num_cars=60, num_exec=1, seed=4)
        run.buyer.accept_probability = 0.0
        state = run.initial_state(executor)
        output = executor.execute(run.input_batch(0), state)
        all_amounts = []
        for index in range(1, 5):
            bids = output.outputs_of(f"dealer{index}_bid")[f"Bids{index}"]
            all_amounts.extend(row.values[4] for row in bids.rows)
        best = output.outputs_of("agg")["BestBids"]
        if all_amounts:
            assert best.rows[0].values[4] == min(all_amounts)

    def test_decline_means_no_purchase(self):
        workflow, modules = build_dealership_workflow()
        executor = WorkflowExecutor(workflow, modules)
        run = DealershipRun(num_cars=20, num_exec=3, seed=6)
        run.buyer.accept_probability = 0.0
        state = run.initial_state(executor)
        run.run(executor, state)
        assert run.purchase is None
        assert run.executions_run == 3

    def test_provenance_graph_grows_linearly(self, dealership_execution):
        graph, outputs, _run, _executor = dealership_execution
        # Invocations: 12 per execution (4 dealers × 2 + and/agg/xor/car).
        assert len(graph.invocations) == 12 * len(outputs)
