"""Tests for the Arctic stations benchmark workload and topologies."""

import pytest

from repro.benchmark.arctic import ArcticRun, build_arctic_workflow
from repro.benchmark.datasets import (
    MONTH_SEASONS,
    arctic_observation,
    arctic_observations,
    months_of_selectivity,
)
from repro.benchmark.topologies import (
    build_topology,
    dense_topology,
    parallel_topology,
    serial_topology,
    terminal_stations,
)
from repro.errors import WorkflowDefinitionError
from repro.graph import GraphBuilder, NodeKind
from repro.workflow import WorkflowExecutor


class TestSyntheticData:
    def test_observation_shape(self):
        row = arctic_observation(1, 1961, 7)
        assert len(row) == 9
        year, month, season, air_temp = row[:4]
        assert (year, month, season) == (1961, 7, "summer")
        assert isinstance(air_temp, float)

    def test_deterministic(self):
        assert arctic_observation(1, 1961, 7) == arctic_observation(1, 1961, 7)
        assert arctic_observation(1, 1961, 7) != arctic_observation(2, 1961, 7)

    def test_winter_colder_than_summer(self):
        winter = arctic_observation(1, 1970, 1)[3]
        summer = arctic_observation(1, 1970, 7)[3]
        assert winter < summer

    def test_observations_cardinality(self):
        rows = arctic_observations(3, 1961, 1965)
        assert len(rows) == 5 * 12

    def test_seasons_map(self):
        assert MONTH_SEASONS[12] == "winter"
        assert MONTH_SEASONS[6] == "summer"
        assert len(MONTH_SEASONS) == 12

    def test_months_of_selectivity(self):
        assert len(months_of_selectivity("all", 5)) == 12
        assert months_of_selectivity("month", 5) == [5]
        assert len(months_of_selectivity("season", 1)) == 3
        with pytest.raises(ValueError):
            months_of_selectivity("wat", 1)


class TestTopologies:
    def test_serial(self):
        layers, edges = serial_topology(4)
        assert layers == [[1], [2], [3], [4]]
        assert edges == [(1, 2), (2, 3), (3, 4)]
        assert terminal_stations((layers, edges)) == [4]

    def test_parallel(self):
        layers, edges = parallel_topology(3)
        assert layers == [[1, 2, 3]]
        assert edges == []
        assert terminal_stations((layers, edges)) == [1, 2, 3]

    def test_dense_fan_out_3(self):
        # Fig 4(c): 9 stations, fan-out 3, complete bipartite layers.
        layers, edges = dense_topology(9, 3)
        assert layers == [[1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert (1, 5) in edges and (3, 4) in edges
        assert len(edges) == 9 + 9
        # "Msta5 gets three minTemp values, one from each 1,2,3."
        upstream_of_5 = [source for source, target in edges if target == 5]
        assert upstream_of_5 == [1, 2, 3]

    def test_dense_ragged_last_layer(self):
        layers, _edges = dense_topology(5, 2)
        assert layers == [[1, 2], [3, 4], [5]]

    def test_build_topology_dispatch(self):
        assert build_topology("serial", 2) == serial_topology(2)
        with pytest.raises(WorkflowDefinitionError):
            build_topology("ring", 2)
        with pytest.raises(WorkflowDefinitionError):
            build_topology("serial", 0)
        with pytest.raises(WorkflowDefinitionError):
            dense_topology(4, 0)


class TestArcticWorkflow:
    @pytest.mark.parametrize("topology,stations,fan_out", [
        ("serial", 2, 2), ("parallel", 4, 2), ("dense", 6, 2),
        ("dense", 9, 3),
    ])
    def test_workflows_validate(self, topology, stations, fan_out):
        workflow, modules = build_arctic_workflow(topology, stations, fan_out)
        # validate() already ran inside; sanity-check the shape.
        assert len(workflow.input_nodes) == 1
        assert len(workflow.output_nodes) == 1
        station_nodes = [node for node in workflow.node_labels
                         if node.startswith("sta")]
        assert len(station_nodes) == stations

    def test_overall_min_correct(self, arctic_execution):
        """The workflow's overall minimum equals a direct Python
        computation over the same observations and selectivity."""
        _graph, outputs, run, executor = arctic_execution
        final = outputs[-1].outputs_of("out")["OverallMin"]
        reported = final.rows[0].values[0]
        # Recompute: months seen = history + the executed months.
        expected = None
        for station in (1, 2, 3):
            rows = arctic_observations(station, run.start_year,
                                       run.start_year + run.history_years - 1)
            for execution_index in range(len(outputs)):
                batch = run.input_batch(execution_index)
                year, month, _sel = batch["in"]["Query"][0]
                rows.append(arctic_observation(station, year, month))
            last_year, last_month, _sel = run.input_batch(
                len(outputs) - 1)["in"]["Query"][0]
            for row in rows:
                if row[1] == last_month:  # selectivity = month
                    temp = row[3]
                    expected = temp if expected is None else min(expected, temp)
        assert reported == pytest.approx(expected)

    def test_state_grows_per_execution(self, arctic_execution):
        _graph, outputs, run, executor = arctic_execution
        # (history + executions) observations per station — reflected
        # in the last invocation's state node count.
        graph = _graph
        invocations = graph.invocations_of("Msta1")
        assert len(invocations) == len(outputs)
        history = run.history_years * 12
        assert len(invocations[0].state_nodes) == history
        assert len(invocations[1].state_nodes) == history + 1

    def test_selectivity_affects_aggregate_size(self):
        """Lower selectivity ⇒ more tuples feed the MIN aggregate —
        the mechanism behind Figs 6(b)/6(c)/7(c)."""
        sizes = {}
        for selectivity in ("all", "season", "month", "year"):
            workflow, modules = build_arctic_workflow("parallel", 1)
            builder = GraphBuilder()
            executor = WorkflowExecutor(workflow, modules, builder)
            run = ArcticRun(workflow, modules, selectivity=selectivity,
                            num_exec=1, history_years=2)
            run.run(executor)
            agg_nodes = builder.graph.nodes_of_kind(NodeKind.AGG)
            sizes[selectivity] = max(
                len(builder.graph.preds(node.node_id)) for node in agg_nodes)
        assert sizes["all"] > sizes["season"] > sizes["month"] > sizes["year"]
        # Exact expectations with 2 years of history + 1 new January
        # observation: all = 25; season (Dec/Jan/Feb) = 2·3 + 1 = 7;
        # month (January) = 2 + 1 = 3; year (the query year) = 1.
        assert sizes["all"] == 25
        assert sizes["season"] == 7
        assert sizes["month"] == 3
        assert sizes["year"] == 1

    def test_graph_size_by_topology(self):
        """Denser topologies yield more edges (Fig 6(c) ordering)."""
        edges = {}
        for topology, fan_out in (("serial", 2), ("parallel", 2),
                                  ("dense", 3)):
            workflow, modules = build_arctic_workflow(topology, 6, fan_out)
            builder = GraphBuilder()
            executor = WorkflowExecutor(workflow, modules, builder)
            run = ArcticRun(workflow, modules, selectivity="month",
                            num_exec=2, history_years=1)
            run.run(executor)
            edges[topology] = builder.graph.edge_count
        assert edges["dense"] > edges["parallel"]

    def test_invalid_selectivity(self):
        workflow, modules = build_arctic_workflow("parallel", 1)
        with pytest.raises(ValueError):
            ArcticRun(workflow, modules, selectivity="everything")

    def test_input_batches_advance_months(self):
        workflow, modules = build_arctic_workflow("parallel", 1)
        run = ArcticRun(workflow, modules, num_exec=14, history_years=1,
                        start_year=1961)
        batches = run.input_batches()
        first = batches[0]["in"]["Query"][0]
        thirteenth = batches[12]["in"]["Query"][0]
        assert first[:2] == (1962, 1)
        assert thirteenth[:2] == (1963, 1)

    def test_serial_min_flows_downstream(self):
        """In a serial chain, the last station's output min is ≤ every
        upstream station's local min."""
        workflow, modules = build_arctic_workflow("serial", 3)
        executor = WorkflowExecutor(workflow, modules)
        run = ArcticRun(workflow, modules, selectivity="year", num_exec=1,
                        history_years=1)
        state = run.initial_state(executor)
        output = executor.execute(run.input_batch(0), state)
        sta1 = output.outputs_of("sta1")["MinTemp1"].rows[0].values[0]
        sta3 = output.outputs_of("sta3")["MinTemp3"].rows[0].values[0]
        overall = output.outputs_of("out")["OverallMin"].rows[0].values[0]
        assert sta3 <= sta1
        assert overall == sta3
