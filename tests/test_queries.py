"""Unit + integration tests for the Section 4 query layer:
Zoom, deletion propagation, subgraph, dependency, ProQL-lite."""

import pytest

from repro.errors import QueryError, UnknownNodeError, ZoomError
from repro.graph import GraphBuilder, NodeKind
from repro.queries import (
    ProQL,
    Zoomer,
    coarse_view,
    delete_base_tuples,
    depends_on,
    extract_subgraph,
    highest_fanout_nodes,
    intermediate_nodes,
    propagate_deletion,
    strict_supporting_tuples,
    subgraph_query,
    supporting_tuples,
    zoom_out,
)


@pytest.fixture
def simple_invocation_graph():
    """One module invocation: input → join with state → output.

    Layout: w (workflow input) → i (input ·), base → s (state ·),
    join = ·(i, s), plus = +(join), o (output ·).
    """
    builder = GraphBuilder()
    w = builder.workflow_input_node(value=("req",))
    invocation = builder.begin_invocation("M")
    i = builder.module_input_node(w)
    base = builder.base_tuple_node("Cars", value=("C2",))
    s = builder.module_state_node(base)
    join = builder.times_node([i, s])
    plus = builder.plus_node([join])
    o = builder.module_output_node(plus)
    builder.end_invocation()
    return builder.graph, {"w": w, "i": i, "base": base, "s": s,
                           "join": join, "plus": plus, "o": o,
                           "m": invocation.module_node}


class TestIntermediateNodes:
    def test_definition_4_1(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        intermediates = intermediate_nodes(graph, ["M"])
        # join and plus are intermediate; i/s/o/m/base/w are not.
        assert intermediates == {nodes["join"], nodes["plus"]}

    def test_paths_stop_at_outputs(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        # Add a consumer past the output; it must not be intermediate.
        downstream = graph.add_node(NodeKind.PLUS)
        graph.add_edge(nodes["o"], downstream)
        intermediates = intermediate_nodes(graph, ["M"])
        assert downstream not in intermediates
        assert nodes["o"] not in intermediates


class TestZoom:
    def test_zoom_out_removes_internals(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        zoomed, _zoomer = zoom_out(graph, ["M"])
        for internal in ("join", "plus", "s", "base"):
            assert not zoomed.has_node(nodes[internal])
        for kept in ("w", "i", "o", "m"):
            assert zoomed.has_node(nodes[kept])

    def test_zoom_node_bridges_inputs_to_outputs(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        zoomed, _zoomer = zoom_out(graph, ["M"])
        zoom_nodes = zoomed.nodes_of_kind(NodeKind.ZOOM)
        assert len(zoom_nodes) == 1
        meta = zoom_nodes[0]
        assert set(zoomed.preds(meta.node_id)) == {nodes["i"]}
        assert set(zoomed.succs(meta.node_id)) == {nodes["o"]}
        # Output still reachable from the workflow input.
        assert zoomed.reachable(nodes["w"], nodes["o"])

    def test_zoom_in_is_inverse(self, simple_invocation_graph):
        graph, _nodes = simple_invocation_graph
        before_nodes = set(graph.nodes)
        before_edges = graph.edge_count
        zoomer = Zoomer(graph)
        zoomer.zoom_out(["M"])
        zoomer.zoom_in(["M"])
        assert set(graph.nodes) == before_nodes
        assert graph.edge_count == before_edges
        graph.check_consistency()

    def test_zoom_out_unknown_module(self, simple_invocation_graph):
        graph, _nodes = simple_invocation_graph
        with pytest.raises(ZoomError):
            Zoomer(graph).zoom_out(["Nope"])

    def test_zoom_in_without_zoom_out(self, simple_invocation_graph):
        graph, _nodes = simple_invocation_graph
        with pytest.raises(ZoomError):
            Zoomer(graph).zoom_in(["M"])

    def test_double_zoom_out_is_idempotent(self, simple_invocation_graph):
        graph, _nodes = simple_invocation_graph
        zoomer = Zoomer(graph)
        assert zoomer.zoom_out(["M"]) == ["M"]
        assert zoomer.zoom_out(["M"]) == []  # already zoomed

    def test_coarse_view_has_no_internals(self, dealership_execution):
        graph, _outputs, _run, _executor = dealership_execution
        coarse = coarse_view(graph)
        internal_kinds = {NodeKind.TIMES, NodeKind.PLUS, NodeKind.DELTA,
                          NodeKind.TENSOR, NodeKind.AGG, NodeKind.BLACKBOX,
                          NodeKind.STATE}
        remaining = {node.kind for node in coarse.nodes.values()}
        assert remaining.isdisjoint(internal_kinds)
        assert coarse.nodes_of_kind(NodeKind.ZOOM)

    def test_zoom_roundtrip_on_dealership(self, dealership_execution):
        graph, _outputs, _run, _executor = dealership_execution
        duplicate = graph.copy()
        zoomer = Zoomer(duplicate)
        before = (set(duplicate.nodes), duplicate.edge_count)
        modules = [f"Mdealer{i}" for i in range(1, 5)]
        zoomer.zoom_out(modules)
        zoomer.zoom_in(modules)
        assert (set(duplicate.nodes), duplicate.edge_count) == before
        duplicate.check_consistency()

    def test_zoom_all_modules(self, dealership_execution):
        graph, _outputs, _run, _executor = dealership_execution
        duplicate = graph.copy()
        zoomer = Zoomer(duplicate)
        done = zoomer.zoom_out_all()
        assert set(done) == duplicate.module_names() | set(done)
        assert zoomer.zoomed_out_modules == set(done)


class TestDeletion:
    def test_rule_1_all_incoming_deleted(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        outcome = propagate_deletion(graph, [nodes["join"]])
        assert not outcome.survived(nodes["plus"])  # rule 1

    def test_rule_2_multiplicative(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        outcome = propagate_deletion(graph, [nodes["base"]])
        assert not outcome.survived(nodes["s"])     # · dies on one edge
        assert not outcome.survived(nodes["join"])
        assert not outcome.survived(nodes["o"])
        assert outcome.survived(nodes["i"])          # untouched branch
        assert outcome.survived(nodes["m"])          # no incoming edges

    def test_base_nodes_never_cascade(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        outcome = propagate_deletion(graph, [nodes["w"]])
        # The m-node and the base state tuple survive (Example 4.4).
        assert outcome.survived(nodes["m"])
        assert outcome.survived(nodes["base"])

    def test_plus_survives_partial_deletion(self):
        builder = GraphBuilder()
        builder.begin_invocation("M")
        t1 = builder.base_tuple_node("R")
        t2 = builder.base_tuple_node("R")
        plus = builder.plus_node([t1, t2])
        builder.end_invocation()
        outcome = propagate_deletion(builder.graph, [t1])
        assert outcome.survived(plus)
        outcome = propagate_deletion(builder.graph, [t1, t2])
        assert not outcome.survived(plus)

    def test_in_place_vs_copy(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        propagate_deletion(graph, [nodes["base"]])
        assert graph.has_node(nodes["base"])  # copy mode untouched
        propagate_deletion(graph, [nodes["base"]], in_place=True)
        assert not graph.has_node(nodes["base"])

    def test_unknown_seed(self, simple_invocation_graph):
        graph, _nodes = simple_invocation_graph
        with pytest.raises(UnknownNodeError):
            propagate_deletion(graph, [424242])

    def test_blackbox_flag(self):
        builder = GraphBuilder()
        builder.begin_invocation("M")
        t1 = builder.base_tuple_node("R")
        t2 = builder.base_tuple_node("R")
        bb = builder.blackbox_node("F", [t1, t2])
        builder.end_invocation()
        graph = builder.graph
        # Letter of Definition 4.2: BB survives one input deletion.
        assert propagate_deletion(graph, [t1]).survived(bb)
        # Conservative reading: it dies.
        strict = propagate_deletion(graph, [t1], blackbox_multiplicative=True)
        assert not strict.survived(bb)

    def test_delete_base_tuples_by_label(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        label = graph.node(nodes["base"]).label
        outcome = delete_base_tuples(graph, [label])
        assert nodes["base"] in outcome.removed

    def test_graph_stays_consistent(self, dealership_execution):
        graph, _outputs, _run, _executor = dealership_execution
        seed = next(iter(graph.nodes_of_kind(NodeKind.TUPLE))).node_id
        outcome = propagate_deletion(graph, [seed])
        outcome.graph.check_consistency()


class TestSubgraph:
    def test_components(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        result = subgraph_query(graph, nodes["join"])
        assert nodes["i"] in result.ancestors
        assert nodes["o"] in result.descendants
        assert nodes["join"] in result
        assert result.size <= graph.node_count

    def test_siblings_of_descendants(self):
        builder = GraphBuilder()
        builder.begin_invocation("M")
        t1 = builder.base_tuple_node("R")
        t2 = builder.base_tuple_node("R")
        join = builder.times_node([t1, t2])
        builder.end_invocation()
        result = subgraph_query(builder.graph, t1)
        # t2 is a sibling: it co-derives the join.
        assert t2 in result.siblings

    def test_extract_subgraph(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        result = subgraph_query(graph, nodes["join"])
        extracted = extract_subgraph(graph, result)
        assert extracted.node_count == result.size
        extracted.check_consistency()

    def test_highest_fanout(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        top = highest_fanout_nodes(graph, 2)
        degrees = [graph.out_degree(node_id) for node_id in top]
        assert degrees == sorted(degrees, reverse=True)


class TestDependency:
    def test_depends_on(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        assert depends_on(graph, nodes["o"], [nodes["w"]])
        assert not depends_on(graph, nodes["i"], [nodes["base"]])
        assert not depends_on(graph, nodes["o"], [nodes["o"]])

    def test_supporting_tuples(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        labels = supporting_tuples(graph, nodes["o"])
        assert graph.node(nodes["base"]).label in labels

    def test_strict_supporting_tuples(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        strict = strict_supporting_tuples(graph, nodes["o"])
        assert graph.node(nodes["base"]).label in strict


class TestProQL:
    def test_kind_and_module_filters(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        query = ProQL(graph)
        tuples = query.of_kind(NodeKind.TUPLE)
        assert tuples.ids() == [nodes["base"]]
        assert query.in_module("M").count() > 0

    def test_traversals(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        query = ProQL(graph).node(nodes["join"])
        assert nodes["o"] in query.descendants().ids()
        assert nodes["w"] in query.ancestors().ids()
        assert set(query.parents().ids()) == {nodes["i"], nodes["s"]}
        assert query.children().ids() == [nodes["plus"]]

    def test_set_algebra(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        everything = ProQL(graph)
        p_nodes = everything.p_nodes()
        v_nodes = everything.v_nodes()
        assert p_nodes.union(v_nodes).count() == everything.count()
        assert p_nodes.intersect(v_nodes).is_empty()
        assert everything.minus(p_nodes).count() == v_nodes.count()

    def test_reaches(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        assert ProQL(graph).node(nodes["w"]).reaches(nodes["o"])
        assert not ProQL(graph).node(nodes["o"]).reaches(nodes["w"])

    def test_projections(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        tuples = ProQL(graph).of_kind(NodeKind.TUPLE)
        assert tuples.labels() == [graph.node(nodes["base"]).label]
        assert tuples.one().node_id == nodes["base"]
        assert ("C2",) in ProQL(graph).of_kind(NodeKind.TUPLE).values()

    def test_one_requires_singleton(self, simple_invocation_graph):
        graph, _nodes = simple_invocation_graph
        with pytest.raises(QueryError):
            ProQL(graph).one()

    def test_unknown_node_anchor(self, simple_invocation_graph):
        graph, _nodes = simple_invocation_graph
        with pytest.raises(QueryError):
            ProQL(graph).node(9999)

    def test_cross_graph_combination_rejected(self, simple_invocation_graph):
        graph, _nodes = simple_invocation_graph
        other = GraphBuilder().graph
        with pytest.raises(QueryError):
            ProQL(graph).union(ProQL(other))

    def test_label_filters(self, simple_invocation_graph):
        graph, nodes = simple_invocation_graph
        label = graph.node(nodes["base"]).label
        assert ProQL(graph).with_label(label).count() == 1
        assert ProQL(graph).label_contains("Cars").count() == 1

    def test_motivating_question(self, dealership_execution):
        # "Which cars affected the computation of this winning bid?"
        graph, outputs, _run, _executor = dealership_execution
        best = outputs[0].outputs_of("agg")["BestBids"]
        bid_node = best.rows[0].prov
        cars = (ProQL(graph).node(bid_node).ancestors()
                .of_kind(NodeKind.TUPLE).label_contains("Cars").labels())
        assert cars  # at least the cars of the requested model
