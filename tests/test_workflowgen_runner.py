"""Tests for the WorkflowGen measurement helpers and the experiment
runner (shapes of every figure's table at tiny scale)."""

import pytest

from repro.benchmark import (
    TimedRun,
    measure_delete_queries,
    measure_graph_build,
    measure_subgraph_queries,
    measure_zoom_out,
    measure_zoom_roundtrip,
    run_arctic,
    run_dealerships,
)
from repro.benchmark import runner as runner_module
from repro.benchmark.runner import (
    EXPERIMENTS,
    experiment_fig5a,
    experiment_fig5b,
    experiment_fig6a,
    experiment_fig6b,
    experiment_fig7a,
    experiment_fig7b,
    experiment_provenance_size,
    main,
)


class TestTimedRuns:
    def test_run_dealerships_tracked(self):
        outcome = run_dealerships(num_cars=12, num_exec=2, track=True,
                                  force_decline=True)
        assert len(outcome.execution_seconds) == 2
        assert outcome.graph is not None
        assert outcome.graph.node_count > 0
        assert outcome.mean_seconds > 0

    def test_run_dealerships_untracked(self):
        outcome = run_dealerships(num_cars=12, num_exec=1, track=False)
        assert outcome.graph is None

    def test_tracking_overhead_positive_at_scale(self):
        tracked = run_dealerships(num_cars=200, num_exec=3, track=True,
                                  force_decline=True)
        untracked = run_dealerships(num_cars=200, num_exec=3, track=False,
                                    force_decline=True)
        # Fig 5(a): tracking costs measurable overhead.
        assert tracked.total_seconds > untracked.total_seconds

    def test_run_arctic(self):
        outcome = run_arctic("serial", 2, num_exec=2, history_years=1)
        assert len(outcome.execution_seconds) == 2
        assert outcome.graph.node_count > 0

    def test_timed_run_empty(self):
        empty = TimedRun([], None)
        assert empty.mean_seconds == 0.0


class TestMeasurementHelpers:
    @pytest.fixture(scope="class")
    def small_graph(self):
        return run_dealerships(num_cars=12, num_exec=2, track=True,
                               force_decline=True).graph

    def test_measure_graph_build(self, small_graph):
        seconds, rebuilt = measure_graph_build(small_graph)
        assert seconds > 0
        assert rebuilt.node_count == small_graph.node_count

    def test_measure_graph_build_with_path(self, small_graph, tmp_path):
        path = str(tmp_path / "spool.jsonl")
        seconds, _rebuilt = measure_graph_build(small_graph, path)
        assert seconds > 0

    def test_measure_zoom_out(self, small_graph):
        seconds, zoomed = measure_zoom_out(small_graph, ["Magg"])
        assert seconds > 0
        assert zoomed.node_count < small_graph.node_count

    def test_measure_zoom_roundtrip(self, small_graph):
        out_seconds, in_seconds = measure_zoom_roundtrip(small_graph, ["Magg"])
        assert out_seconds > 0 and in_seconds > 0

    def test_measure_subgraph_queries(self, small_graph):
        samples = measure_subgraph_queries(small_graph, 5)
        assert len(samples) == 5
        for _node, seconds, size in samples:
            assert seconds >= 0 and size >= 0

    def test_measure_delete_queries(self, small_graph):
        samples = measure_delete_queries(small_graph, 5)
        assert len(samples) == 5
        for _node, _seconds, removed in samples:
            assert removed >= 1


class TestExperimentShapes:
    def test_fig5a_rows(self):
        rows = experiment_fig5a(num_cars=12, exec_counts=(1, 2))
        assert len(rows) == 2
        for num_exec, tracked, untracked in rows:
            assert tracked > 0 and untracked > 0

    def test_fig5b_rows(self):
        rows = experiment_fig5b(num_stations=2, num_exec=1, history_years=1)
        assert [row[0] for row in rows] == ["parallel", "serial", "dense"]

    def test_fig6a_rows_monotone_nodes(self):
        rows = experiment_fig6a(num_cars=12, exec_counts=(1, 3))
        assert rows[1][1] > rows[0][1]  # more executions ⇒ more nodes

    def test_fig6b_row_shape(self):
        rows = experiment_fig6b(module_counts=(2,), num_exec=2,
                                history_years=1)
        assert [row[0] for row in rows] == ["all", "season", "month", "year"]
        assert all(row[1] > 0 for row in rows)

    def test_fig6b_mechanism_lower_selectivity_bigger_graph(self):
        # The timing ordering of Fig 6(b) comes from graph size; at
        # test scale we assert the size ordering (timings are noisy).
        all_graph = run_arctic("dense", 2, 2, "all", num_exec=2,
                               history_years=1).graph
        year_graph = run_arctic("dense", 2, 2, "year", num_exec=2,
                                history_years=1).graph
        assert all_graph.edge_count > year_graph.edge_count

    def test_fig7a_rows(self):
        rows = experiment_fig7a(num_cars=12, exec_counts=(2,))
        (_num_exec, nodes, dealer_out, dealer_in, agg_out, agg_in) = rows[0]
        assert nodes > 0
        assert dealer_out > agg_out  # dealers have more instances

    def test_fig7b_rows_sorted(self):
        rows = experiment_fig7b(num_cars=12, num_exec=2, node_count=5)
        sizes = [row[0] for row in rows]
        assert sizes == sorted(sizes)

    def test_provenance_size_fraction_bounds(self):
        rows = experiment_provenance_size(num_cars=40, num_exec=2)
        assert rows
        for _node, used, total, fraction in rows:
            assert 0 < used <= total
            assert 0 < fraction < 100.0

    def test_experiments_registry_complete(self):
        expected = {"fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c",
                    "provsize", "fig7a", "fig7b", "fig7c", "delete"}
        assert set(EXPERIMENTS) == expected

    def test_main_rejects_unknown(self, capsys):
        assert main(["not-an-experiment"]) == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_main_prints_table(self, capsys, monkeypatch):
        monkeypatch.setitem(
            runner_module.EXPERIMENTS, "fig5a",
            (lambda: [(1, 0.1, 0.05)], ("numExec", "a", "b")))
        assert main(["fig5a"]) == 0
        output = capsys.readouterr().out
        assert "fig5a" in output and "numExec" in output
