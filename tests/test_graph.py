"""Unit tests for the provenance graph: nodes, storage, builder,
serialization, DOT export, stats."""

import io

import pytest

from repro.errors import (
    ProvenanceGraphError,
    SerializationError,
    UnknownNodeError,
)
from repro.graph import (
    GraphBuilder,
    Node,
    NodeKind,
    ProvenanceGraph,
    dependency_profile,
    dump_graph,
    graph_stats,
    load_graph,
    to_dot,
    to_expression,
)
from repro.provenance import COUNTING, BOOLEAN


class TestProvenanceGraph:
    def test_add_node_and_edge(self):
        graph = ProvenanceGraph()
        a = graph.add_node(NodeKind.TUPLE, "t0")
        b = graph.add_node(NodeKind.PLUS)
        graph.add_edge(a, b)
        assert graph.preds(b) == (a,)
        assert graph.succs(a) == (b,)
        assert graph.node_count == 2
        assert graph.edge_count == 1

    def test_default_labels(self):
        graph = ProvenanceGraph()
        assert graph.node(graph.add_node(NodeKind.PLUS)).label == "+"
        assert graph.node(graph.add_node(NodeKind.TIMES)).label == "·"
        assert graph.node(graph.add_node(NodeKind.DELTA)).label == "δ"

    def test_unknown_node_errors(self):
        graph = ProvenanceGraph()
        with pytest.raises(UnknownNodeError):
            graph.node(99)
        with pytest.raises(UnknownNodeError):
            graph.preds(99)
        a = graph.add_node(NodeKind.TUPLE, "t")
        with pytest.raises(UnknownNodeError):
            graph.add_edge(a, 99)

    def test_self_loop_rejected(self):
        graph = ProvenanceGraph()
        a = graph.add_node(NodeKind.TUPLE, "t")
        with pytest.raises(ProvenanceGraphError):
            graph.add_edge(a, a)

    def test_remove_node_cleans_edges(self):
        graph = ProvenanceGraph()
        a = graph.add_node(NodeKind.TUPLE, "a")
        b = graph.add_node(NodeKind.PLUS)
        c = graph.add_node(NodeKind.PLUS)
        graph.add_edge(a, b)
        graph.add_edge(b, c)
        graph.remove_node(b)
        assert graph.succs(a) == ()
        assert graph.preds(c) == ()
        assert graph.edge_count == 0
        graph.check_consistency()

    def test_ancestors_descendants(self):
        graph = ProvenanceGraph()
        a, b, c = (graph.add_node(NodeKind.TUPLE, f"t{i}") for i in range(3))
        graph.add_edge(a, b)
        graph.add_edge(b, c)
        assert graph.ancestors(c) == {a, b}
        assert graph.descendants(a) == {b, c}
        assert graph.reachable(a, c)
        assert not graph.reachable(c, a)

    def test_topological_order(self):
        graph = ProvenanceGraph()
        a, b, c = (graph.add_node(NodeKind.TUPLE, f"t{i}") for i in range(3))
        graph.add_edge(a, b)
        graph.add_edge(b, c)
        order = graph.topological_order()
        assert order.index(a) < order.index(b) < order.index(c)
        assert graph.is_acyclic()

    def test_copy_is_independent(self):
        graph = ProvenanceGraph()
        a = graph.add_node(NodeKind.TUPLE, "t")
        duplicate = graph.copy()
        duplicate.remove_node(a)
        assert graph.has_node(a)
        graph.check_consistency()
        duplicate.check_consistency()

    def test_invocation_registry(self):
        graph = ProvenanceGraph()
        invocation = graph.new_invocation("Mdealer1")
        assert graph.node(invocation.module_node).kind is NodeKind.MODULE
        assert graph.invocations_of("Mdealer1") == [invocation]
        assert graph.module_names() == {"Mdealer1"}

    def test_nodes_of_kind(self):
        graph = ProvenanceGraph()
        graph.add_node(NodeKind.TUPLE, "a")
        graph.add_node(NodeKind.PLUS)
        assert len(graph.nodes_of_kind(NodeKind.TUPLE)) == 1


class TestDuplicateEdges:
    """Regression: parallel duplicate edges double-counted silently."""

    def _two_nodes(self):
        graph = ProvenanceGraph()
        a = graph.add_node(NodeKind.TUPLE, "t0")
        b = graph.add_node(NodeKind.PLUS)
        return graph, a, b

    def test_add_edge_admits_duplicates_by_default(self):
        graph, a, b = self._two_nodes()
        assert graph.add_edge(a, b) is True
        assert graph.add_edge(a, b) is True
        assert graph.edge_count == 2
        assert graph.preds(b) == (a, a)
        assert graph.duplicate_edge_count() == 1

    def test_add_edge_dedupe_skips_duplicates(self):
        graph, a, b = self._two_nodes()
        assert graph.add_edge(a, b, dedupe=True) is True
        assert graph.add_edge(a, b, dedupe=True) is False
        assert graph.edge_count == 1
        assert graph.preds(b) == (a,)
        assert graph.duplicate_edge_count() == 0

    def test_has_edge(self):
        graph, a, b = self._two_nodes()
        assert not graph.has_edge(a, b)
        graph.add_edge(a, b)
        assert graph.has_edge(a, b)
        assert not graph.has_edge(b, a)
        with pytest.raises(UnknownNodeError):
            graph.has_edge(a, 99)

    def test_check_consistency_warns_on_duplicates(self):
        from repro.errors import DuplicateEdgeWarning

        graph, a, b = self._two_nodes()
        graph.add_edge(a, b)
        graph.add_edge(a, b)
        with pytest.warns(DuplicateEdgeWarning):
            graph.check_consistency()

    def test_check_consistency_silent_without_duplicates(self):
        import warnings

        graph, a, b = self._two_nodes()
        graph.add_edge(a, b)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            graph.check_consistency()

    def test_check_consistency_can_allow_intentional_duplicates(self):
        import warnings

        graph, a, b = self._two_nodes()
        graph.add_edge(a, b)
        graph.add_edge(a, b)  # semiring multiplicity t·t: valid
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            graph.check_consistency(warn_duplicates=False)

    def test_version_counter_tracks_mutations(self):
        graph = ProvenanceGraph()
        initial = graph.version
        a = graph.add_node(NodeKind.TUPLE, "t0")
        b = graph.add_node(NodeKind.PLUS)
        assert graph.version > initial
        after_nodes = graph.version
        graph.add_edge(a, b)
        assert graph.version > after_nodes
        after_edge = graph.version
        graph.add_edge(a, b, dedupe=True)  # skipped: no mutation
        assert graph.version == after_edge
        graph.remove_node(b)
        assert graph.version > after_edge


class TestGraphBuilder:
    def test_invocation_lifecycle(self):
        builder = GraphBuilder()
        builder.begin_invocation("M")
        with pytest.raises(ProvenanceGraphError):
            builder.begin_invocation("M2")
        builder.end_invocation()
        with pytest.raises(ProvenanceGraphError):
            builder.end_invocation()

    def test_plumbing_requires_invocation(self):
        builder = GraphBuilder()
        tuple_node = builder.workflow_input_node()
        with pytest.raises(ProvenanceGraphError):
            builder.module_input_node(tuple_node)

    def test_input_node_structure(self):
        # The paper's i-node: ·(tuple p-node, m-node), registered on
        # the invocation.
        builder = GraphBuilder()
        tuple_node = builder.workflow_input_node(value=("P1", "B1"))
        invocation = builder.begin_invocation("M")
        input_node = builder.module_input_node(tuple_node)
        builder.end_invocation()
        assert set(builder.graph.preds(input_node)) == {
            tuple_node, invocation.module_node}
        assert invocation.input_nodes == [input_node]
        assert builder.graph.node(input_node).kind is NodeKind.INPUT

    def test_state_and_output_nodes_registered(self):
        builder = GraphBuilder()
        invocation = builder.begin_invocation("M")
        base = builder.base_tuple_node("Cars", value=("C2", "Civic"))
        state = builder.module_state_node(base)
        output = builder.module_output_node(state)
        builder.end_invocation()
        assert invocation.state_nodes == [state]
        assert invocation.output_nodes == [output]
        assert builder.graph.node(base).module == "M"

    def test_aggregate_construction(self):
        builder = GraphBuilder()
        builder.begin_invocation("M")
        t1 = builder.base_tuple_node("Cars")
        t2 = builder.base_tuple_node("Cars")
        one = builder.value_node(1)
        tensor1 = builder.tensor_node(t1, one)
        tensor2 = builder.tensor_node(t2, one)
        agg = builder.agg_node("Count", [tensor1, tensor2], value=2)
        builder.end_invocation()
        graph = builder.graph
        assert graph.node(agg).ntype == "v"
        assert set(graph.preds(agg)) == {tensor1, tensor2}
        assert graph.node(agg).value == 2

    def test_to_expression_counting_semantics(self):
        # A + node over two tuples evaluates to multiplicity 2.
        builder = GraphBuilder()
        builder.begin_invocation("M")
        t1 = builder.base_tuple_node("R")
        t2 = builder.base_tuple_node("R")
        plus = builder.plus_node([t1, t2])
        times = builder.times_node([t1, t2])
        builder.end_invocation()
        plus_expr = to_expression(builder.graph, plus)
        times_expr = to_expression(builder.graph, times)
        assert plus_expr.evaluate(COUNTING, lambda _t: 1) == 2
        assert times_expr.evaluate(COUNTING, lambda _t: 1) == 1

    def test_to_expression_delta(self):
        builder = GraphBuilder()
        builder.begin_invocation("M")
        t1 = builder.base_tuple_node("R")
        t2 = builder.base_tuple_node("R")
        group = builder.delta_node([t1, t2])
        builder.end_invocation()
        expression = to_expression(builder.graph, group)
        assert expression.evaluate(COUNTING, lambda _t: 3) == 1  # δ(6) = 1

    def test_to_expression_blackbox(self):
        builder = GraphBuilder()
        builder.begin_invocation("M")
        t1 = builder.base_tuple_node("R")
        bb = builder.blackbox_node("CalcBid", [t1], ntype="v", value=42)
        builder.end_invocation()
        expression = to_expression(builder.graph, bb)
        assert "CalcBid" in str(expression)


class TestSerialization:
    def _sample_graph(self):
        builder = GraphBuilder()
        tuple_node = builder.workflow_input_node(value=("P1", "B1", "Civic"))
        invocation = builder.begin_invocation("Mdealer1")
        input_node = builder.module_input_node(tuple_node,
                                               value=("P1", "B1", "Civic"))
        base = builder.base_tuple_node("Cars", value=("C2", "Civic"))
        state = builder.module_state_node(base)
        join = builder.times_node([input_node, state])
        builder.module_output_node(join)
        builder.end_invocation()
        return builder.graph

    def test_gzip_round_trip(self, tmp_path):
        import gzip

        graph = self._sample_graph()
        plain = tmp_path / "spool.jsonl"
        compressed = tmp_path / "spool.jsonl.gz"
        dump_graph(graph, plain)
        dump_graph(graph, compressed)
        # The .gz file really is gzip on disk...
        with gzip.open(compressed, "rt", encoding="utf-8") as stream:
            assert stream.readline() == plain.open().readline()
        # ...and loads back transparently to the same graph.
        rebuilt = load_graph(compressed)
        assert rebuilt.node_count == graph.node_count
        assert rebuilt.edge_count == graph.edge_count
        for node_id in graph.node_ids():
            assert rebuilt.preds(node_id) == graph.preds(node_id)

    def test_round_trip(self):
        graph = self._sample_graph()
        buffer = io.StringIO()
        dump_graph(graph, buffer)
        buffer.seek(0)
        rebuilt = load_graph(buffer)
        assert rebuilt.node_count == graph.node_count
        assert rebuilt.edge_count == graph.edge_count
        assert len(rebuilt.invocations) == len(graph.invocations)
        for node_id in graph.node_ids():
            original = graph.node(node_id)
            loaded = rebuilt.node(node_id)
            assert original.kind is loaded.kind
            assert original.label == loaded.label
            assert sorted(graph.preds(node_id)) == sorted(rebuilt.preds(node_id))
        rebuilt.check_consistency()

    def test_round_trip_file(self, tmp_path):
        graph = self._sample_graph()
        path = tmp_path / "graph.jsonl"
        dump_graph(graph, str(path))
        rebuilt = load_graph(str(path))
        assert rebuilt.node_count == graph.node_count

    def test_new_nodes_after_reload_get_fresh_ids(self):
        graph = self._sample_graph()
        buffer = io.StringIO()
        dump_graph(graph, buffer)
        buffer.seek(0)
        rebuilt = load_graph(buffer)
        fresh = rebuilt.add_node(NodeKind.PLUS)
        assert fresh not in graph.nodes or fresh >= graph.node_count

    def test_missing_header(self):
        with pytest.raises(SerializationError):
            load_graph(io.StringIO('{"record": "node", "id": 0, '
                                   '"kind": "tuple", "label": "t", '
                                   '"ntype": "p"}\n'))

    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            load_graph(io.StringIO("not-json\n"))

    def test_unknown_kind(self):
        lines = ('{"record": "header", "version": 1}\n'
                 '{"record": "node", "id": 0, "kind": "wat", '
                 '"label": "t", "ntype": "p"}\n')
        with pytest.raises(SerializationError):
            load_graph(io.StringIO(lines))

    def test_wrong_version(self):
        with pytest.raises(SerializationError):
            load_graph(io.StringIO('{"record": "header", "version": 99}\n'))

    def test_header_count_mismatch(self):
        lines = '{"record": "header", "version": 1, "nodes": 5}\n'
        with pytest.raises(SerializationError):
            load_graph(io.StringIO(lines))

    def test_value_encodings(self):
        graph = ProvenanceGraph()
        graph.add_node(NodeKind.VALUE, "v", "v", value=3.5)
        graph.add_node(NodeKind.VALUE, "t", "v", value=("a", 1))
        graph.add_node(NodeKind.VALUE, "o", "v", value={"weird": "payload"})
        buffer = io.StringIO()
        dump_graph(graph, buffer)
        buffer.seek(0)
        rebuilt = load_graph(buffer)
        assert rebuilt.node(0).value == 3.5
        assert rebuilt.node(1).value == ("a", 1)
        assert "weird" in rebuilt.node(2).value  # repr fallback


class TestDotExport:
    def test_renders_nodes_and_edges(self):
        builder = GraphBuilder()
        builder.begin_invocation("M")
        a = builder.base_tuple_node("R")
        b = builder.plus_node([a])
        builder.end_invocation()
        dot = to_dot(builder.graph)
        assert "digraph" in dot
        assert f"n{a} -> n{b}" in dot

    def test_subset_rendering(self):
        builder = GraphBuilder()
        builder.begin_invocation("M")
        a = builder.base_tuple_node("R")
        b = builder.plus_node([a])
        builder.end_invocation()
        dot = to_dot(builder.graph, node_ids={a})
        assert f"n{b}" not in dot

    def test_include_values(self):
        graph = ProvenanceGraph()
        graph.add_node(NodeKind.VALUE, "v", "v", value=42)
        assert "42" in to_dot(graph, include_values=True)

    def test_escapes_quotes(self):
        graph = ProvenanceGraph()
        graph.add_node(NodeKind.TUPLE, 'we"ird')
        assert '\\"' in to_dot(graph)


class TestStats:
    def test_graph_stats_counts(self):
        builder = GraphBuilder()
        builder.begin_invocation("M")
        a = builder.base_tuple_node("R")
        builder.plus_node([a])
        builder.end_invocation()
        stats = graph_stats(builder.graph)
        assert stats.node_count == 3
        assert stats.nodes_by_kind["tuple"] == 1
        assert stats.invocation_count == 1
        assert "nodes=3" in str(stats)

    def test_dependency_profile(self):
        builder = GraphBuilder()
        w = builder.workflow_input_node()
        builder.begin_invocation("M")
        input_node = builder.module_input_node(w)
        used = builder.base_tuple_node("Cars")
        unused = builder.base_tuple_node("Cars")
        state_used = builder.module_state_node(used)
        builder.module_state_node(unused)
        join = builder.times_node([input_node, state_used])
        output = builder.module_output_node(join)
        builder.end_invocation()
        profile = dependency_profile(builder.graph, output)
        assert profile.fine_grained_state == 1
        assert profile.total_state == 2
        assert profile.state_fraction == 0.5
        assert profile.fine_grained_inputs == 1
        assert "50.0%" in str(profile)
