"""Unit tests for the Pig Latin lexer and parser."""

import pytest

from repro.errors import PigSyntaxError
from repro.piglatin import TokenType, ast, parse, parse_expression, tokenize


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("foreach FOREACH ForEach")
        assert all(token.value == "FOREACH" for token in tokens[:-1])

    def test_identifiers_keep_case(self):
        tokens = tokenize("ReqModel")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "ReqModel"

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert tokens[0].value == "42"
        assert tokens[1].value == "3.5"

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello world"

    def test_string_escape(self):
        assert tokenize(r"'a\'b'")[0].value == "a'b"

    def test_unterminated_string(self):
        with pytest.raises(PigSyntaxError):
            tokenize("'oops")

    def test_dollar_ref(self):
        token = tokenize("$2")[0]
        assert token.type is TokenType.DOLLAR
        assert token.value == "2"

    def test_dollar_without_digits(self):
        with pytest.raises(PigSyntaxError):
            tokenize("$x")

    def test_line_comment(self):
        tokens = tokenize("a -- comment here\nb")
        assert [t.value for t in tokens[:-1]] == ["a", "b"]

    def test_block_comment(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert [t.value for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(PigSyntaxError):
            tokenize("/* forever")

    def test_double_colon_symbol(self):
        tokens = tokenize("Cars::Model")
        assert tokens[1].value == "::"

    def test_comparison_operators(self):
        values = [t.value for t in tokenize("== != <= >= < >")[:-1]]
        assert values == ["==", "!=", "<=", ">=", "<", ">"]

    def test_unexpected_character(self):
        with pytest.raises(PigSyntaxError) as info:
            tokenize("a @ b")
        assert info.value.line == 1

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_eof_token(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestParserStatements:
    def test_load(self):
        statement = parse("A = LOAD 'cars';").statements[0]
        assert isinstance(statement, ast.Load)
        assert statement.alias == "A"
        assert statement.source == "cars"

    def test_filter(self):
        statement = parse("B = FILTER A BY Model == 'Civic';").statements[0]
        assert isinstance(statement, ast.Filter)
        assert isinstance(statement.condition, ast.BinaryOp)

    def test_group_by(self):
        statement = parse("G = GROUP A BY Model;").statements[0]
        assert isinstance(statement, ast.Group)
        assert len(statement.keys) == 1

    def test_group_by_multiple_keys(self):
        statement = parse("G = GROUP A BY (Model, Year);").statements[0]
        assert len(statement.keys) == 2

    def test_group_all(self):
        statement = parse("G = GROUP A ALL;").statements[0]
        assert statement.keys == ()

    def test_group_parallel(self):
        statement = parse("G = GROUP A BY Model PARALLEL 4;").statements[0]
        assert statement.parallel == 4

    def test_cogroup(self):
        statement = parse(
            "G = COGROUP A BY Model, B BY Model, C BY Model;").statements[0]
        assert isinstance(statement, ast.CoGroup)
        assert len(statement.inputs) == 3

    def test_join(self):
        statement = parse("J = JOIN A BY x, B BY y;").statements[0]
        assert isinstance(statement, ast.Join)
        assert statement.inputs[0][0] == "A"

    def test_join_needs_two_clauses(self):
        with pytest.raises(PigSyntaxError):
            parse("J = JOIN A BY x;")

    def test_foreach_generate(self):
        statement = parse(
            "B = FOREACH A GENERATE Model, COUNT(Inventory) AS n;").statements[0]
        assert isinstance(statement, ast.Foreach)
        assert statement.items[1].alias == "n"

    def test_foreach_flatten(self):
        statement = parse(
            "B = FOREACH A GENERATE FLATTEN(CalcBid(R, N));").statements[0]
        assert isinstance(statement.items[0].expression, ast.Flatten)

    def test_union(self):
        statement = parse("U = UNION A, B, C;").statements[0]
        assert statement.input_aliases == ("A", "B", "C")

    def test_distinct(self):
        statement = parse("D = DISTINCT A;").statements[0]
        assert isinstance(statement, ast.Distinct)

    def test_order_by(self):
        statement = parse("O = ORDER A BY Model DESC, Price;").statements[0]
        assert statement.keys == (("Model", False), ("Price", True))

    def test_limit(self):
        statement = parse("L = LIMIT A 5;").statements[0]
        assert statement.count == 5

    def test_store(self):
        statement = parse("STORE A INTO 'out';").statements[0]
        assert isinstance(statement, ast.Store)
        assert statement.destination == "out"

    def test_missing_semicolon(self):
        with pytest.raises(PigSyntaxError):
            parse("A = LOAD 'x'")

    def test_group_as_field_name(self):
        # `group` is the implicit key field of GROUP results.
        statement = parse("B = FOREACH G GENERATE group AS Model;").statements[0]
        expression = statement.items[0].expression
        assert isinstance(expression, ast.FieldRef)
        assert expression.name == "group"

    def test_multi_statement_script(self):
        script = parse("A = LOAD 'x'; B = DISTINCT A; STORE B INTO 'y';")
        assert len(script) == 3


class TestParserExpressions:
    def test_precedence(self):
        expression = parse_expression("1 + 2 * 3")
        assert expression.op == "+"
        assert expression.right.op == "*"

    def test_parentheses(self):
        expression = parse_expression("(1 + 2) * 3")
        assert expression.op == "*"

    def test_boolean_precedence(self):
        expression = parse_expression("a == 1 OR b == 2 AND c == 3")
        assert expression.op == "OR"
        assert expression.right.op == "AND"

    def test_not(self):
        expression = parse_expression("NOT a == 1")
        assert isinstance(expression, ast.UnaryOp)

    def test_unary_minus(self):
        expression = parse_expression("-5")
        assert isinstance(expression, ast.UnaryOp)

    def test_is_null(self):
        expression = parse_expression("Model IS NULL")
        assert isinstance(expression, ast.IsNull)
        assert not expression.negated

    def test_is_not_null(self):
        expression = parse_expression("Model IS NOT NULL")
        assert expression.negated

    def test_dotted_ref(self):
        expression = parse_expression("Inventory.CarId")
        assert isinstance(expression, ast.DottedRef)
        assert expression.field == "CarId"

    def test_double_colon_ref(self):
        expression = parse_expression("Cars::Model")
        assert isinstance(expression, ast.FieldRef)
        assert expression.name == "Cars::Model"

    def test_positional_ref(self):
        expression = parse_expression("$2")
        assert expression.position == 2

    def test_function_call(self):
        expression = parse_expression("CONCAT(a, 'x')")
        assert isinstance(expression, ast.FuncCall)
        assert len(expression.args) == 2

    def test_empty_arg_call(self):
        assert parse_expression("F()").args == ()

    def test_literals(self):
        assert parse_expression("TRUE").value is True
        assert parse_expression("NULL").value is None
        assert parse_expression("3.5").value == 3.5
        assert parse_expression("'s'").value == "s"

    def test_star(self):
        assert isinstance(parse_expression("*"), ast.StarRef)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(PigSyntaxError):
            parse_expression("1 1")

    def test_repr_smoke(self):
        # reprs exist for debugging; just exercise them.
        script = parse("B = FOREACH A GENERATE FLATTEN(F(x)) AS y;")
        assert "Foreach" in repr(script.statements[0])
        assert "Script" in repr(script)
