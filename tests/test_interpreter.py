"""Unit + integration tests for the Pig Latin interpreter: bag
semantics and the Section 3.2 provenance construction rules."""

import pytest

from repro.datamodel import Bag, FieldType, Relation, Schema
from repro.errors import PigRuntimeError, UnknownRelationError
from repro.graph import GraphBuilder, NodeKind, to_expression
from repro.piglatin import Interpreter, UDFRegistry
from repro.provenance import COUNTING

CARS = Schema.of(("CarId", FieldType.CHARARRAY),
                 ("Model", FieldType.CHARARRAY))
NUMS = Schema.of(("k", FieldType.CHARARRAY), ("n", FieldType.INT))


def cars_env():
    return {"Cars": Relation.from_values(CARS, [
        ("C1", "Accord"), ("C2", "Civic"), ("C3", "Civic")])}


def run(script, env, builder=None, udfs=None, **kwargs):
    interpreter = Interpreter(builder, udfs, **kwargs)
    return interpreter.execute(script, env)


def run_tracked(script, env, udfs=None, **kwargs):
    builder = GraphBuilder()
    builder.begin_invocation("M")
    result = run(script, env, builder, udfs, **kwargs)
    builder.end_invocation()
    return result, builder.graph


class TestLoadStore:
    def test_load_binds_alias(self):
        result = run("A = LOAD 'Cars';", cars_env())
        assert len(result.relation("A")) == 3

    def test_env_alias_direct_reference(self):
        # The paper's Q_state scripts reference env relations directly.
        result = run("B = FILTER Cars BY Model == 'Civic';", cars_env())
        assert len(result.relation("B")) == 2

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            run("B = FILTER Nope BY Model == 'x';", cars_env())

    def test_unknown_load_source(self):
        with pytest.raises(UnknownRelationError):
            run("A = LOAD 'Nope';", cars_env())

    def test_store(self):
        result = run("A = DISTINCT Cars; STORE A INTO 'out';", cars_env())
        assert len(result.stored["out"]) == 3

    def test_lazy_base_annotation(self):
        _result, graph = run_tracked("B = FILTER Cars BY Model == 'Civic';",
                                     cars_env())
        assert len(graph.nodes_of_kind(NodeKind.TUPLE)) == 3


class TestFilter:
    def test_rows_keep_annotations(self):
        result, _graph = run_tracked("B = FILTER Cars BY Model == 'Civic';",
                                     cars_env())
        b_rel = result.relation("B")
        assert all(row.prov is not None for row in b_rel.rows)

    def test_compact_filter_reuses_nodes(self):
        env = cars_env()
        result, graph = run_tracked("B = FILTER Cars BY Model == 'Civic';", env)
        tuple_provs = {row.prov for row in env["Cars"].rows}
        assert all(row.prov in tuple_provs for row in result.relation("B").rows)

    def test_uncompacted_filter_wraps_in_plus(self):
        env = cars_env()
        result, graph = run_tracked("B = FILTER Cars BY Model == 'Civic';",
                                    env, compact_filter=False)
        for row in result.relation("B").rows:
            assert graph.node(row.prov).kind is NodeKind.PLUS


class TestForeachProjection:
    def test_projection_values(self):
        result = run("B = FOREACH Cars GENERATE Model;", cars_env())
        assert sorted(result.relation("B").value_rows()) == [
            ("Accord",), ("Civic",), ("Civic",)]

    def test_distinct_outputs_share_plus_node(self):
        # Paper rule: one + node per distinct result tuple, fed by all
        # input tuples projecting onto it.
        result, graph = run_tracked("B = FOREACH Cars GENERATE Model;",
                                    cars_env())
        rows = result.relation("B").rows
        civic_rows = [row for row in rows if row.values == ("Civic",)]
        assert len({row.prov for row in civic_rows}) == 1
        plus = graph.node(civic_rows[0].prov)
        assert plus.kind is NodeKind.PLUS
        assert len(graph.preds(civic_rows[0].prov)) == 2

    def test_projection_multiplicity_counting(self):
        # Counting semantics: the Civic projection has multiplicity 2.
        result, graph = run_tracked("B = FOREACH Cars GENERATE Model;",
                                    cars_env())
        civic = next(row for row in result.relation("B").rows
                     if row.values == ("Civic",))
        expression = to_expression(graph, civic.prov)
        assert expression.evaluate(COUNTING, lambda _t: 1) == 2

    def test_star_and_literal(self):
        result = run("B = FOREACH Cars GENERATE *, 'tag' AS T;", cars_env())
        assert result.relation("B").schema.arity == 3
        assert result.relation("B").rows[0].values[2] == "tag"

    def test_arithmetic_projection(self):
        env = {"N": Relation.from_values(NUMS, [("a", 1), ("b", 2)])}
        result = run("B = FOREACH N GENERATE k, n * 10 AS big;", env)
        assert sorted(result.relation("B").value_rows()) == [
            ("a", 10), ("b", 20)]

    def test_positional_projection(self):
        result = run("B = FOREACH Cars GENERATE $1;", cars_env())
        assert result.relation("B").schema.names == ("f1",)

    def test_duplicate_output_names_deduped(self):
        result = run("B = FOREACH Cars GENERATE Model, Model;", cars_env())
        assert len(set(result.relation("B").schema.names)) == 2


class TestGroup:
    def test_group_by_shapes(self):
        result = run("G = GROUP Cars BY Model;", cars_env())
        groups = result.relation("G")
        assert groups.schema.names == ("group", "Cars")
        by_key = {row.values[0]: row.values[1] for row in groups.rows}
        assert len(by_key["Civic"]) == 2
        assert len(by_key["Accord"]) == 1

    def test_group_delta_nodes(self):
        result, graph = run_tracked("G = GROUP Cars BY Model;", cars_env())
        for row in result.relation("G").rows:
            node = graph.node(row.prov)
            assert node.kind is NodeKind.DELTA
            assert len(graph.preds(row.prov)) == len(row.values[1])

    def test_nested_rows_keep_provenance(self):
        # "tuples in the relations nested in t keep their original
        # provenance"
        env = cars_env()
        result, _graph = run_tracked("G = GROUP Cars BY Model;", env)
        base_provs = {row.prov for row in env["Cars"].rows}
        for row in result.relation("G").rows:
            for inner in row.values[1].rows:
                assert inner.prov in base_provs

    def test_group_all(self):
        result = run("G = GROUP Cars ALL;", cars_env())
        rows = result.relation("G").rows
        assert len(rows) == 1
        assert rows[0].values[0] == "all"
        assert len(rows[0].values[1]) == 3

    def test_group_multi_key(self):
        result = run("G = GROUP Cars BY (Model, CarId);", cars_env())
        assert len(result.relation("G")) == 3
        assert isinstance(result.relation("G").rows[0].values[0], tuple)

    def test_group_empty_input(self):
        env = {"E": Relation.empty(CARS)}
        result = run("G = GROUP E BY Model;", env)
        assert len(result.relation("G")) == 0


class TestCoGroup:
    def test_cogroup_aligns_keys(self):
        env = cars_env()
        env["Requests"] = Relation.from_values(
            Schema.of("UserId", "Model"), [("P1", "Civic")])
        result = run("G = COGROUP Requests BY Model, Cars BY Model;", env)
        groups = {row.values[0]: row for row in result.relation("G").rows}
        assert set(groups) == {"Civic", "Accord"}
        civic = groups["Civic"]
        assert len(civic.values[1]) == 1  # one request
        assert len(civic.values[2]) == 2  # two civics

    def test_cogroup_delta_over_all_members(self):
        env = cars_env()
        env["Requests"] = Relation.from_values(
            Schema.of("UserId", "Model"), [("P1", "Civic")])
        _result, graph = run_tracked(
            "G = COGROUP Requests BY Model, Cars BY Model;", env)
        deltas = graph.nodes_of_kind(NodeKind.DELTA)
        by_value = {node.value: node for node in deltas}
        assert len(graph.preds(by_value["Civic"].node_id)) == 3


class TestJoin:
    def test_join_values_and_schema(self):
        env = cars_env()
        env["Req"] = Relation.from_values(Schema.of("Model"), [("Civic",)])
        result = run("J = JOIN Cars BY Model, Req BY Model;", env)
        joined = result.relation("J")
        assert joined.schema.names == ("Cars::CarId", "Cars::Model",
                                       "Req::Model")
        assert len(joined) == 2

    def test_join_times_nodes(self):
        env = cars_env()
        env["Req"] = Relation.from_values(Schema.of("Model"), [("Civic",)])
        result, graph = run_tracked("J = JOIN Cars BY Model, Req BY Model;", env)
        for row in result.relation("J").rows:
            node = graph.node(row.prov)
            assert node.kind is NodeKind.TIMES
            assert len(graph.preds(row.prov)) == 2

    def test_join_null_keys_never_match(self):
        schema = Schema.of("k", "v")
        env = {
            "L": Relation.from_values(schema, [(None, 1), ("a", 2)]),
            "R": Relation.from_values(schema, [(None, 3), ("a", 4)]),
        }
        result = run("J = JOIN L BY k, R BY k;", env)
        assert len(result.relation("J")) == 1

    def test_three_way_join(self):
        schema = Schema.of("k")
        env = {name: Relation.from_values(schema, [("x",)])
               for name in ("A", "B", "C")}
        result = run("J = JOIN A BY k, B BY k, C BY k;", env)
        assert len(result.relation("J")) == 1
        assert result.relation("J").schema.arity == 3

    def test_cross_join_via_literal_key(self):
        env = cars_env()
        env["Tag"] = Relation.from_values(Schema.of("T"), [("t",)])
        result = run("J = JOIN Cars BY 'x', Tag BY 'x';", env)
        assert len(result.relation("J")) == 3

    def test_join_multiplicities(self):
        schema = Schema.of("k")
        env = {
            "L": Relation.from_values(schema, [("x",), ("x",)]),
            "R": Relation.from_values(schema, [("x",)] * 3),
        }
        result = run("J = JOIN L BY k, R BY k;", env)
        assert len(result.relation("J")) == 6


class TestUnionDistinctOrderLimit:
    def test_union_is_bag_union(self):
        env = cars_env()
        env["More"] = Relation.from_values(CARS, [("C2", "Civic")])
        result = run("U = UNION Cars, More;", env)
        assert len(result.relation("U")) == 4

    def test_union_arity_mismatch(self):
        env = cars_env()
        env["Bad"] = Relation.from_values(Schema.of("x"), [("a",)])
        with pytest.raises(PigRuntimeError):
            run("U = UNION Cars, Bad;", env)

    def test_distinct_collapses_and_deltas(self):
        env = {"R": Relation.from_values(Schema.of("x"),
                                         [("a",), ("a",), ("b",)])}
        result, graph = run_tracked("D = DISTINCT R;", env)
        distinct = result.relation("D")
        assert len(distinct) == 2
        for row in distinct.rows:
            assert graph.node(row.prov).kind is NodeKind.DELTA
        a_row = next(row for row in distinct.rows if row.values == ("a",))
        assert len(graph.preds(a_row.prov)) == 2

    def test_order_by(self):
        result = run("O = ORDER Cars BY CarId DESC;", cars_env())
        assert [row.values[0] for row in result.relation("O").rows] == [
            "C3", "C2", "C1"]

    def test_order_multi_key(self):
        result = run("O = ORDER Cars BY Model, CarId DESC;", cars_env())
        assert [row.values[0] for row in result.relation("O").rows] == [
            "C1", "C3", "C2"]

    def test_order_nulls_first(self):
        env = {"R": Relation.from_values(Schema.of("x"), [(1,), (None,), (0,)])}
        result = run("O = ORDER R BY x;", env)
        assert result.relation("O").rows[0].values == (None,)

    def test_order_creates_no_provenance(self):
        env = cars_env()
        _result, graph = run_tracked("O = ORDER Cars BY CarId;", env)
        # Only the m-node and the three lazily annotated base tuples.
        assert graph.node_count == 4

    def test_limit(self):
        result = run("L = LIMIT Cars 2;", cars_env())
        assert len(result.relation("L")) == 2


class TestAggregation:
    def test_count_per_group(self):
        result = run("""
G = GROUP Cars BY Model;
C = FOREACH G GENERATE group AS Model, COUNT(Cars) AS N;
""", cars_env())
        counts = dict(result.relation("C").value_rows())
        assert counts == {"Accord": 1, "Civic": 2}

    def test_aggregate_node_structure(self):
        # Tensor v-nodes pair each member with the aggregated value;
        # the Count v-node folds them (paper Example 3.4).
        _result, graph = run_tracked("""
G = GROUP Cars BY Model;
C = FOREACH G GENERATE group AS Model, COUNT(Cars) AS N;
""", cars_env())
        agg_nodes = graph.nodes_of_kind(NodeKind.AGG)
        assert {node.value for node in agg_nodes} == {1, 2}
        civic_agg = next(node for node in agg_nodes if node.value == 2)
        tensors = graph.preds(civic_agg.node_id)
        assert len(tensors) == 2
        assert all(graph.node(t).kind is NodeKind.TENSOR for t in tensors)

    def test_value_nodes_shared(self):
        # "if a node for this value does not exist already"
        _result, graph = run_tracked("""
G = GROUP Cars BY Model;
C = FOREACH G GENERATE group AS Model, COUNT(Cars) AS N;
""", cars_env())
        value_nodes = graph.nodes_of_kind(NodeKind.VALUE)
        assert len(value_nodes) == 1  # the shared constant 1

    def test_sum_min_max_avg(self):
        env = {"N": Relation.from_values(NUMS, [("a", 1), ("a", 2), ("b", 5)])}
        result = run("""
G = GROUP N BY k;
S = FOREACH G GENERATE group, SUM(N.n) AS s, MIN(N.n) AS lo,
    MAX(N.n) AS hi, AVG(N.n) AS mean;
""", env)
        by_key = {row.values[0]: row.values[1:] for row in result.relation("S").rows}
        assert by_key["a"] == (3, 1, 2, 1.5)
        assert by_key["b"] == (5, 5, 5, 5.0)

    def test_group_all_aggregation(self):
        env = {"N": Relation.from_values(NUMS, [("a", 3), ("b", 7)])}
        result = run("""
G = GROUP N ALL;
M = FOREACH G GENERATE MIN(N.n) AS lo;
""", env)
        assert result.relation("M").value_rows() == [(3,)]

    def test_aggregate_in_arithmetic(self):
        env = {"N": Relation.from_values(NUMS, [("a", 3), ("a", 7)])}
        result = run("""
G = GROUP N BY k;
M = FOREACH G GENERATE group, MIN(N.n) - 1 AS below;
""", env)
        assert result.relation("M").value_rows() == [("a", 2)]

    def test_aggregate_over_empty_group_input(self):
        env = {"E": Relation.empty(NUMS)}
        result = run("""
G = GROUP E BY k;
C = FOREACH G GENERATE group, COUNT(E) AS n;
""", env)
        assert len(result.relation("C")) == 0

    def test_aggregate_needs_bag(self):
        with pytest.raises(PigRuntimeError):
            run("B = FOREACH Cars GENERATE COUNT(Model);", cars_env())

    def test_aggregate_multi_column_needs_projection(self):
        with pytest.raises(PigRuntimeError):
            run("""
G = GROUP Cars BY Model;
B = FOREACH G GENERATE SUM(Cars);
""", cars_env())


class TestBlackBoxes:
    def _udfs(self):
        registry = UDFRegistry()

        def tag_price(cars_bag):
            return len(cars_bag) * 1000

        def explode(cars_bag):
            return [(row.values[0],) for row in cars_bag.rows]

        registry.register("TagPrice", tag_price)
        registry.register("Explode", explode, returns_bag=True,
                          output_schema=Schema.of("CarId"))
        return registry

    def test_scalar_udf_value_and_node(self):
        result, graph = run_tracked("""
G = GROUP Cars BY Model;
B = FOREACH G GENERATE group AS Model, TagPrice(Cars) AS price;
""", cars_env(), udfs=self._udfs())
        prices = dict(result.relation("B").value_rows())
        assert prices == {"Accord": 1000, "Civic": 2000}
        blackboxes = graph.nodes_of_kind(NodeKind.BLACKBOX)
        assert len(blackboxes) == 2
        assert all(node.label == "TagPrice" for node in blackboxes)
        assert all(node.ntype == "v" for node in blackboxes)

    def test_blackbox_preds_are_bag_members(self):
        env = cars_env()
        _result, graph = run_tracked("""
G = GROUP Cars BY Model;
B = FOREACH G GENERATE group AS Model, TagPrice(Cars) AS price;
""", env, udfs=self._udfs())
        base_provs = {row.prov for row in env["Cars"].rows}
        for node in graph.nodes_of_kind(NodeKind.BLACKBOX):
            assert set(graph.preds(node.node_id)) <= base_provs

    def test_flatten_bag_udf(self):
        result, graph = run_tracked("""
G = GROUP Cars BY Model;
B = FOREACH G GENERATE FLATTEN(Explode(Cars));
""", cars_env(), udfs=self._udfs())
        assert sorted(result.relation("B").value_rows()) == [
            ("C1",), ("C2",), ("C3",)]
        bag_bbs = [node for node in graph.nodes_of_kind(NodeKind.BLACKBOX)]
        assert all(node.ntype == "p" for node in bag_bbs)

    def test_flatten_bag_field(self):
        result, graph = run_tracked("""
G = GROUP Cars BY Model;
B = FOREACH G GENERATE group AS Model, FLATTEN(Cars.CarId);
""", cars_env())
        assert sorted(result.relation("B").value_rows()) == [
            ("Accord", "C1"), ("Civic", "C2"), ("Civic", "C3")]
        # Each flattened row: + over ·(group δ, inner tuple).
        for row in result.relation("B").rows:
            node = graph.node(row.prov)
            assert node.kind is NodeKind.PLUS

    def test_flatten_empty_bag_produces_no_rows(self):
        env = {"E": Relation.empty(CARS)}
        result = run("""
G = GROUP E BY Model;
B = FOREACH G GENERATE FLATTEN(E);
""", env)
        assert len(result.relation("B")) == 0
