"""Cooperative cancellation: deadline scopes and kernel checking twins.

The contract under test: with no active scope the kernels run their
original unchecked loops (zero overhead); inside a scope, traversal
checks the wall clock every ``CHECK_EVERY`` expansions and raises
:class:`~repro.errors.DeadlineExceededError`; and a generous deadline
never changes any answer.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import DeadlineExceededError
from repro.graph.nodes import NodeKind
from repro.graph.provgraph import ProvenanceGraph
from repro.queries import cancel
from repro.queries.deletion import deletion_set
from repro.queries.subgraph import subgraph_query
from repro.store.csr import CSRSnapshot


def chain_graph(n: int) -> ProvenanceGraph:
    graph = ProvenanceGraph()
    ids = [graph.add_node(NodeKind.TUPLE, f"t{i}") for i in range(n)]
    for i in range(1, n):
        graph.add_edge(ids[i - 1], ids[i])
    return graph


class TestDeadlineScope:
    def test_no_scope_means_no_deadline(self):
        assert cancel.current() is None
        assert not cancel.active()
        cancel.check("nowhere")  # must be a no-op

    def test_scope_installs_and_restores(self):
        with cancel.deadline_scope(10.0) as deadline:
            assert cancel.current() is deadline
            assert cancel.active()
            assert deadline.remaining() > 9.0
        assert cancel.current() is None

    def test_none_and_nonpositive_budgets_are_noops(self):
        for budget in (None, 0, -1.0):
            with cancel.deadline_scope(budget) as deadline:
                assert deadline is None
                assert cancel.current() is None

    def test_scopes_nest_and_unwind(self):
        with cancel.deadline_scope(10.0) as outer:
            with cancel.deadline_scope(5.0) as inner:
                assert cancel.current() is inner
            assert cancel.current() is outer
        assert cancel.current() is None

    def test_expired_deadline_raises_with_context(self):
        with cancel.deadline_scope(0.000001) as deadline:
            time.sleep(0.002)
            assert deadline.expired()
            with pytest.raises(DeadlineExceededError) as excinfo:
                deadline.check("unit.test")
        assert "unit.test" in str(excinfo.value)
        assert excinfo.value.budget_seconds == pytest.approx(0.000001)

    def test_deadlines_are_thread_local(self):
        seen = {}

        def probe():
            seen["other"] = cancel.current()

        with cancel.deadline_scope(10.0):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["other"] is None


class TestKernelCancellation:
    """The checked twins abort long traversals; answers never change."""

    N = 4000  # > CHECK_EVERY so the countdown actually fires

    @pytest.fixture(scope="class")
    def graph(self):
        return chain_graph(self.N)

    def test_expired_deadline_aborts_traversal(self, graph):
        with cancel.deadline_scope(0.000001):
            time.sleep(0.002)
            with pytest.raises(DeadlineExceededError):
                graph.descendants(0)

    def test_all_kernels_honor_expired_deadline(self, graph):
        mid = self.N // 2
        calls = [lambda: graph.descendants(0),
                 lambda: graph.ancestors(self.N - 1),
                 lambda: graph.reachable(0, self.N - 1),
                 lambda: subgraph_query(graph, mid),
                 lambda: deletion_set(graph, [0])]
        for call in calls:
            with cancel.deadline_scope(0.000001):
                time.sleep(0.002)
                with pytest.raises(DeadlineExceededError):
                    call()

    def test_generous_deadline_preserves_answers(self, graph):
        mid = self.N // 2
        plain = (graph.descendants(0), graph.ancestors(self.N - 1),
                 graph.reachable(0, self.N - 1),
                 deletion_set(graph, [mid]))
        sub_plain = subgraph_query(graph, mid)
        with cancel.deadline_scope(60.0):
            timed = (graph.descendants(0), graph.ancestors(self.N - 1),
                     graph.reachable(0, self.N - 1),
                     deletion_set(graph, [mid]))
            sub_timed = subgraph_query(graph, mid)
        assert plain == timed
        assert sub_plain.ancestors == sub_timed.ancestors
        assert sub_plain.descendants == sub_timed.descendants
        assert sub_plain.siblings == sub_timed.siblings

    def test_csr_snapshot_honors_deadlines(self, graph):
        snapshot = CSRSnapshot(graph)
        with cancel.deadline_scope(0.000001):
            time.sleep(0.002)
            with pytest.raises(DeadlineExceededError):
                snapshot.descendants(0)
            with pytest.raises(DeadlineExceededError):
                snapshot.reachable(0, self.N - 1)
        # And with room to spare, answers match the graph path.
        with cancel.deadline_scope(60.0):
            assert snapshot.descendants(0) == set(graph.descendants(0))

    def test_short_traversals_finish_under_tiny_budgets(self):
        # Fewer expansions than CHECK_EVERY: the countdown never fires,
        # so even an absurdly small budget cannot misfire.
        small = chain_graph(16)
        with cancel.deadline_scope(0.000001):
            time.sleep(0.002)
            assert len(small.descendants(0)) == 15
