"""Shared fixtures: paper-example relations and executed workflows."""

from __future__ import annotations

import pytest

from repro.datamodel import FieldType, Relation, Schema
from repro.graph import GraphBuilder
from repro.piglatin import Interpreter, UDFRegistry
from repro.workflow import WorkflowExecutor

CARS_SCHEMA = Schema.of(("CarId", FieldType.CHARARRAY),
                        ("Model", FieldType.CHARARRAY))
SOLD_SCHEMA = Schema.of(("CarId", FieldType.CHARARRAY),
                        ("BidId", FieldType.CHARARRAY))
REQUESTS_SCHEMA = Schema.of(("UserId", FieldType.CHARARRAY),
                            ("BidId", FieldType.CHARARRAY),
                            ("Model", FieldType.CHARARRAY))


@pytest.fixture
def cars_relation():
    """The paper's Example 2.3 Cars state."""
    return Relation.from_values(CARS_SCHEMA, [
        ("C1", "Accord"), ("C2", "Civic"), ("C3", "Civic")])


@pytest.fixture
def requests_relation():
    """The paper's Example 2.3 bid request."""
    return Relation.from_values(REQUESTS_SCHEMA, [("P1", "B1", "Civic")])


@pytest.fixture
def sold_relation():
    return Relation.from_values(SOLD_SCHEMA, [])


@pytest.fixture
def builder():
    return GraphBuilder()


@pytest.fixture
def tracked_interpreter(builder):
    """An interpreter inside an open module invocation."""
    builder.begin_invocation("Mtest")
    yield Interpreter(builder)
    builder.end_invocation()


@pytest.fixture
def untracked_interpreter():
    return Interpreter()


# ----------------------------------------------------------------------
# Executed dealership workflow (expensive: session scope)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def dealership_execution():
    """A small executed dealership run with provenance.

    Returns (graph, outputs, run, executor).  The buyer declines until
    the final execution, so the run has bid history.
    """
    from repro.benchmark.dealerships import (
        DealershipRun,
        build_dealership_workflow,
    )

    workflow, modules = build_dealership_workflow()
    graph_builder = GraphBuilder()
    executor = WorkflowExecutor(workflow, modules, graph_builder)
    run = DealershipRun(num_cars=24, num_exec=4, seed=11)
    run.buyer.accept_probability = 0.0
    state = run.initial_state(executor)
    outputs = run.run(executor, state)
    return graph_builder.graph, outputs, run, executor


@pytest.fixture(scope="session")
def arctic_execution():
    """A small executed Arctic run (parallel, 3 stations)."""
    from repro.benchmark.arctic import ArcticRun, build_arctic_workflow

    workflow, modules = build_arctic_workflow("parallel", 3)
    graph_builder = GraphBuilder()
    executor = WorkflowExecutor(workflow, modules, graph_builder)
    run = ArcticRun(workflow, modules, selectivity="month", num_exec=2,
                    history_years=1)
    outputs = run.run(executor)
    return graph_builder.graph, outputs, run, executor
