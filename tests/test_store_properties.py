"""Property-style tests: randomized WorkflowGen graphs, seeded.

Two invariants over arbitrary provenance graphs:

* **round-trip fidelity** — a graph spooled through any combination of
  JSONL (plain or gzip) and store backends comes back identical;
* **index agreement** — ``ReachabilityIndex`` (with and without the
  ancestor side, exercising the traversal fallback), the CSR
  snapshot, and the dict adjacency all answer reachability questions
  identically.

Graphs come from real WorkflowGen executions (different seeds change
the bid randomness and therefore graph shape) plus a synthetic seeded
DAG generator that produces shapes the workloads never make (high
fan-in, orphan nodes, duplicate parallel edges).
"""

from __future__ import annotations

import random

import pytest

from repro.benchmark.workflowgen import run_dealerships
from repro.graph import NodeKind, ProvenanceGraph, dump_graph, load_graph
from repro.queries import ReachabilityIndex
from repro.queries.subgraph import highest_fanout_nodes
from repro.store import CSRSnapshot, MemoryStore, SQLiteStore

from test_store import assert_graphs_equal

SEEDS = (0, 7, 23)


def synthetic_dag(seed: int, nodes: int = 120) -> ProvenanceGraph:
    """A random DAG (edges only point forward in id order)."""
    rng = random.Random(seed)
    graph = ProvenanceGraph()
    kinds = list(NodeKind)
    for index in range(nodes):
        kind = rng.choice(kinds)
        graph.add_node(kind, f"n{index}",
                       value=rng.choice((None, index, ("t", index), "s")))
    for target in range(1, nodes):
        for _ in range(rng.randint(0, 3)):
            source = rng.randrange(target)
            graph.add_edge(source, target)
            if rng.random() < 0.1:
                graph.add_edge(source, target)  # duplicate parallel edge
    return graph


@pytest.fixture(scope="module")
def workflow_graphs():
    return {seed: run_dealerships(num_cars=20, num_exec=2, seed=seed,
                                  track=True, force_decline=True).graph
            for seed in SEEDS}


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_jsonl_store_jsonl_round_trip(seed, workflow_graphs, tmp_path):
    graph = workflow_graphs[seed]
    spool = tmp_path / f"run-{seed}.jsonl.gz"
    dump_graph(graph, spool)
    with SQLiteStore(tmp_path / f"run-{seed}.db") as store:
        store.import_jsonl("r", spool)
        back = tmp_path / f"back-{seed}.jsonl"
        store.export_jsonl("r", back)
    assert_graphs_equal(load_graph(back), graph)


@pytest.mark.parametrize("seed", SEEDS)
def test_synthetic_round_trip_all_backends(seed, tmp_path):
    graph = synthetic_dag(seed)
    memory = MemoryStore(copy_on_write=True)
    memory.put_graph("r", graph)
    assert_graphs_equal(memory.load_graph("r"), graph)
    with SQLiteStore(tmp_path / "s.db") as store:
        store.put_graph("r", graph)
        assert_graphs_equal(store.load_graph("r"), graph)


@pytest.mark.parametrize("seed", SEEDS)
def test_sqlite_preserves_id_counters(seed, tmp_path):
    graph = synthetic_dag(seed, nodes=30)
    with SQLiteStore(tmp_path / "s.db") as store:
        store.put_graph("r", graph)
        loaded = store.load_graph("r")
    fresh = loaded.add_node(NodeKind.VALUE)
    assert fresh == graph._next_node_id  # no id reuse after reload


# ----------------------------------------------------------------------
# Index agreement (incl. the index_ancestors=False fallback path)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_reachability_fallback_agrees(seed, workflow_graphs):
    graph = workflow_graphs[seed]
    full = ReachabilityIndex(graph, index_ancestors=True)
    lean = ReachabilityIndex(graph, index_ancestors=False)
    assert lean._ancestors is None  # really on the fallback path
    probes = highest_fanout_nodes(graph, 10)
    rng = random.Random(seed)
    probes += [rng.randrange(graph.node_count) for _ in range(10)]
    for node_id in probes:
        assert lean.ancestors(node_id) == full.ancestors(node_id)
        assert lean.ancestors(node_id) == frozenset(graph.ancestors(node_id))
        assert lean.descendants(node_id) == full.descendants(node_id)
    # The lean index halves the paper's memory-overhead figure.
    assert lean.memory_cells() <= full.memory_cells()


@pytest.mark.parametrize("seed", SEEDS)
def test_fallback_subgraph_agrees(seed, workflow_graphs):
    graph = workflow_graphs[seed]
    lean = ReachabilityIndex(graph, index_ancestors=False)
    snapshot = CSRSnapshot(graph)
    for node_id in highest_fanout_nodes(graph, 10):
        indexed = lean.subgraph(node_id)
        flat = snapshot.subgraph(node_id)
        assert indexed.ancestors == flat.ancestors
        assert indexed.descendants == flat.descendants
        assert indexed.siblings == flat.siblings


@pytest.mark.parametrize("seed", SEEDS)
def test_csr_agrees_on_synthetic_dags(seed):
    graph = synthetic_dag(seed)
    snapshot = CSRSnapshot(graph)
    rng = random.Random(seed + 1)
    for _ in range(25):
        node_id = rng.randrange(graph.node_count)
        assert snapshot.ancestors(node_id) == graph.ancestors(node_id)
        assert snapshot.descendants(node_id) == graph.descendants(node_id)
        source = rng.randrange(graph.node_count)
        assert snapshot.reachable(source, node_id) \
            == graph.reachable(source, node_id)
