"""Integration tests for the Lipstick facade: tracker → disk → query
processor (the paper's Section 5.1 architecture)."""

import pytest

from repro import Lipstick
from repro.benchmark.dealerships import DealershipRun, build_dealership_workflow
from repro.graph import NodeKind


@pytest.fixture(scope="module")
def lipstick_run(tmp_path_factory):
    directory = tmp_path_factory.mktemp("lipstick")
    lipstick = Lipstick(str(directory))
    workflow, modules = build_dealership_workflow()
    executor = lipstick.executor(workflow, modules)
    run = DealershipRun(num_cars=16, num_exec=2, seed=5)
    run.buyer.accept_probability = 0.0
    state = run.initial_state(executor)
    outputs = run.run(executor, state)
    return lipstick, outputs


class TestLipstickFacade:
    def test_graph_accumulates(self, lipstick_run):
        lipstick, _outputs = lipstick_run
        assert lipstick.graph.node_count > 0

    def test_flush_and_reload(self, lipstick_run):
        lipstick, _outputs = lipstick_run
        path = lipstick.flush()
        processor = lipstick.query_processor(path)
        assert processor.graph.node_count == lipstick.graph.node_count
        processor.graph.check_consistency()

    def test_query_processor_zoom(self, lipstick_run):
        lipstick, _outputs = lipstick_run
        processor = lipstick.query_processor(lipstick.flush())
        before = processor.graph.node_count
        processor.zoom_out("Magg")
        assert "Magg" in processor.zoomed_out_modules
        processor.zoom_in("Magg")
        assert processor.graph.node_count == before

    def test_query_processor_delete(self, lipstick_run):
        lipstick, outputs = lipstick_run
        processor = lipstick.query_processor(lipstick.flush())
        best = outputs[0].outputs_of("agg")["BestBids"]
        if best.rows:
            result = processor.delete(best.rows[0].prov)
            assert result.removed_count >= 1
            # Non-in-place: original untouched.
            assert processor.graph.has_node(best.rows[0].prov)

    def test_query_processor_subgraph(self, lipstick_run):
        lipstick, _outputs = lipstick_run
        processor = lipstick.query_processor(lipstick.flush())
        top = processor.highest_fanout_nodes(5)
        assert len(top) == 5
        result = processor.subgraph(top[0])
        assert result.size > 0

    def test_query_processor_proql(self, lipstick_run):
        lipstick, _outputs = lipstick_run
        processor = lipstick.query_processor()
        modules = processor.query().of_kind(NodeKind.MODULE).labels()
        assert "Magg" in modules

    def test_dependency_report(self, lipstick_run):
        lipstick, _outputs = lipstick_run
        profiles = lipstick.dependency_report()
        assert profiles
        meaningful = [p for p in profiles if p.fine_grained_state > 0]
        # Fine-grained: no output depends on everything.
        for profile in meaningful:
            assert profile.state_fraction < 1.0

    def test_stats(self, lipstick_run):
        lipstick, _outputs = lipstick_run
        stats = lipstick.query_processor().stats()
        assert stats.node_count == lipstick.graph.node_count

    def test_tracking_disabled(self):
        lipstick = Lipstick(track_provenance=False)
        assert lipstick.graph is None
        with pytest.raises(RuntimeError):
            lipstick.flush()
        with pytest.raises(RuntimeError):
            lipstick.query_processor()

    def test_run_sequence_api(self, tmp_path):
        lipstick = Lipstick(str(tmp_path))
        workflow, modules = build_dealership_workflow()
        run = DealershipRun(num_cars=8, num_exec=1, seed=2)
        executor = lipstick.executor(workflow, modules)
        state = run.initial_state(executor)
        outputs = lipstick.run_sequence(workflow, modules,
                                        [run.input_batch(0)], state)
        assert len(outputs) == 1
