"""Unit tests for scalar expression evaluation."""

import pytest

from repro.datamodel import Bag, FieldType, Relation, Row, Schema
from repro.errors import PigRuntimeError
from repro.piglatin import parse_expression
from repro.piglatin.expressions import (
    ExpressionEvaluator,
    apply_binary_values,
    apply_unary_value,
    default_item_name,
    infer_expression_type,
)
from repro.piglatin import ast

SCHEMA = Schema.of(("Model", FieldType.CHARARRAY),
                   ("Price", FieldType.INT),
                   ("Discount", FieldType.INT))


def evaluate(source, values=("Civic", 20000, None), schema=SCHEMA):
    evaluator = ExpressionEvaluator(schema)
    return evaluator.evaluate(parse_expression(source), Row(values))


class TestFieldAccess:
    def test_field_ref(self):
        assert evaluate("Model") == "Civic"

    def test_positional_ref(self):
        assert evaluate("$1") == 20000

    def test_star(self):
        assert evaluate("*") == ("Civic", 20000, None)

    def test_dotted_on_bag(self):
        inner = Relation.from_values(Schema.of("CarId", "Model"),
                                     [("C1", "Golf"), ("C2", "Golf")])
        schema = Schema.of(("Items", FieldType.BAG, inner.schema))
        evaluator = ExpressionEvaluator(schema)
        result = evaluator.evaluate(parse_expression("Items.CarId"),
                                    Row((Bag(inner),)))
        assert isinstance(result, Bag)
        assert [row.values for row in result.rows] == [("C1",), ("C2",)]

    def test_dotted_on_atom_fails(self):
        with pytest.raises(PigRuntimeError):
            evaluate("Model.x")

    def test_dotted_on_null_is_null(self):
        schema = Schema.of("Items")
        evaluator = ExpressionEvaluator(schema)
        assert evaluator.evaluate(parse_expression("Items.x"), Row((None,))) is None


class TestArithmetic:
    def test_basic_ops(self):
        assert evaluate("Price + 1") == 20001
        assert evaluate("Price - 1") == 19999
        assert evaluate("Price * 2") == 40000
        assert evaluate("Price / 2") == 10000
        assert evaluate("Price % 3") == 20000 % 3

    def test_null_propagates(self):
        assert evaluate("Discount + 1") is None
        assert evaluate("-Discount") is None

    def test_division_by_zero(self):
        with pytest.raises(PigRuntimeError):
            evaluate("Price / 0")

    def test_unary_minus(self):
        assert evaluate("-Price") == -20000


class TestComparisons:
    def test_all_operators(self):
        assert evaluate("Price == 20000") is True
        assert evaluate("Price != 20000") is False
        assert evaluate("Price < 30000") is True
        assert evaluate("Price <= 20000") is True
        assert evaluate("Price > 30000") is False
        assert evaluate("Price >= 20001") is False

    def test_null_comparisons_false(self):
        assert evaluate("Discount == 1") is False
        assert evaluate("Discount < 1") is False

    def test_incomparable_types(self):
        with pytest.raises(PigRuntimeError):
            evaluate("Model < 3")

    def test_is_null(self):
        assert evaluate("Discount IS NULL") is True
        assert evaluate("Discount IS NOT NULL") is False
        assert evaluate("Price IS NULL") is False


class TestBoolean:
    def test_and_or(self):
        assert evaluate("Price > 1 AND Model == 'Civic'") is True
        assert evaluate("Price > 1 AND Model == 'Golf'") is False
        assert evaluate("Price < 1 OR Model == 'Civic'") is True

    def test_not(self):
        assert evaluate("NOT Price > 1") is False

    def test_truth_treats_null_falsy(self):
        evaluator = ExpressionEvaluator(SCHEMA)
        assert evaluator.truth(parse_expression("Discount"),
                               Row(("Civic", 1, None))) is False


class TestFunctions:
    def test_scalar_builtins(self):
        assert evaluate("ABS(0 - Price)") == 20000
        assert evaluate("UPPER(Model)") == "CIVIC"
        assert evaluate("LOWER(Model)") == "civic"
        assert evaluate("CONCAT(Model, '!')") == "Civic!"
        assert evaluate("SIZE(Model)") == 5
        assert evaluate("ROUND(1.6)") == 2
        assert evaluate("FLOOR(1.6)") == 1
        assert evaluate("CEIL(1.2)") == 2

    def test_null_safe_builtins(self):
        assert evaluate("ABS(Discount)") is None
        assert evaluate("CONCAT(Model, Discount)") is None

    def test_resolver_udf(self):
        def resolver(name):
            if name == "Twice":
                return lambda value: value * 2
            return None
        evaluator = ExpressionEvaluator(SCHEMA, resolver)
        result = evaluator.evaluate(parse_expression("Twice(Price)"),
                                    Row(("Civic", 100, None)))
        assert result == 200

    def test_unknown_function(self):
        with pytest.raises(PigRuntimeError):
            evaluate("Nope(Price)")

    def test_flatten_outside_generate(self):
        evaluator = ExpressionEvaluator(SCHEMA)
        with pytest.raises(PigRuntimeError):
            evaluator.evaluate(ast.Flatten(ast.FieldRef("Model")),
                               Row(("Civic", 1, None)))


class TestApplyHelpers:
    def test_apply_binary_values(self):
        assert apply_binary_values("+", 1, 2) == 3
        assert apply_binary_values("AND", 1, 0) is False
        assert apply_binary_values("==", "a", "a") is True
        assert apply_binary_values("*", None, 2) is None

    def test_apply_unary_value(self):
        assert apply_unary_value("NOT", 0) is True
        assert apply_unary_value("-", 3) == -3
        assert apply_unary_value("-", None) is None

    def test_unknown_operators(self):
        with pytest.raises(PigRuntimeError):
            apply_binary_values("**", 1, 2)
        with pytest.raises(PigRuntimeError):
            apply_unary_value("~", 1)


class TestInference:
    def test_literal_types(self):
        assert infer_expression_type(ast.Literal(1), SCHEMA) is FieldType.INT
        assert infer_expression_type(ast.Literal("x"), SCHEMA) is FieldType.CHARARRAY

    def test_field_types(self):
        assert infer_expression_type(ast.FieldRef("Price"), SCHEMA) is FieldType.INT
        assert infer_expression_type(ast.FieldRef("nope"), SCHEMA) is FieldType.ANY

    def test_comparison_is_boolean(self):
        expression = parse_expression("Price > 3")
        assert infer_expression_type(expression, SCHEMA) is FieldType.BOOLEAN

    def test_arithmetic_types(self):
        assert infer_expression_type(parse_expression("Price + 1"),
                                     SCHEMA) is FieldType.INT
        assert infer_expression_type(parse_expression("Price / 2"),
                                     SCHEMA) is FieldType.DOUBLE

    def test_default_item_name(self):
        assert default_item_name(ast.FieldRef("Cars::Model"), 0) == "Model"
        assert default_item_name(ast.FuncCall("COUNT", []), 0) == "count"
        assert default_item_name(ast.Literal(1), 3) == "f3"
        assert default_item_name(ast.PositionalRef(2), 0) == "f2"
