"""Edge cases of the Pig Latin interpreter: multiple FLATTENs, empty
inputs, schema inference corners, nested aggregation pipelines."""

import pytest

from repro.datamodel import Bag, FieldType, Relation, Schema
from repro.errors import PigRuntimeError
from repro.graph import GraphBuilder, NodeKind
from repro.piglatin import Interpreter, UDFRegistry

ORDERS = Schema.of(("OrderId", FieldType.CHARARRAY),
                   ("Customer", FieldType.CHARARRAY),
                   ("Total", FieldType.INT))


def orders_env():
    return {"Orders": Relation.from_values(ORDERS, [
        ("O1", "alice", 10), ("O2", "alice", 30),
        ("O3", "bob", 20), ("O4", "carol", 5)])}


def run(script, env, builder=None, udfs=None):
    return Interpreter(builder, udfs).execute(script, env)


class TestMultipleFlatten:
    def test_two_flattens_cross_product(self):
        # Pig semantics: multiple FLATTENs expand to the cross product.
        env = orders_env()
        script = """
G = GROUP Orders BY Customer;
Pairs = FOREACH G GENERATE group, FLATTEN(Orders.OrderId),
    FLATTEN(Orders.Total);
"""
        result = run(script, env)
        pairs = result.relation("Pairs")
        # alice: 2 orders → 2×2 = 4 combos; bob 1; carol 1.
        assert len(pairs) == 4 + 1 + 1
        alice = [row.values for row in pairs.rows if row.values[0] == "alice"]
        assert ("alice", "O1", 30) in alice  # genuine cross product

    def test_flatten_with_scalar_items(self):
        env = orders_env()
        script = """
G = GROUP Orders BY Customer;
X = FOREACH G GENERATE group AS Customer, COUNT(Orders) AS N,
    FLATTEN(Orders.OrderId);
"""
        result = run(script, env)
        rows = {row.values for row in result.relation("X").rows}
        assert ("alice", 2, "O1") in rows
        assert ("alice", 2, "O2") in rows

    def test_flatten_joint_provenance(self):
        env = orders_env()
        builder = GraphBuilder()
        builder.begin_invocation("M")
        result = run("""
G = GROUP Orders BY Customer;
X = FOREACH G GENERATE group, FLATTEN(Orders.OrderId);
""", env, builder)
        builder.end_invocation()
        graph = builder.graph
        for row in result.relation("X").rows:
            node = graph.node(row.prov)
            assert node.kind is NodeKind.PLUS
            (core,) = graph.preds(row.prov)
            # ·(group δ, inner tuple): joint derivation.
            assert graph.node(core).kind is NodeKind.TIMES


class TestChainedAggregation:
    def test_aggregate_of_aggregates(self):
        # Per-customer totals, then the max over customers.
        env = orders_env()
        script = """
ByCustomer = GROUP Orders BY Customer;
Totals = FOREACH ByCustomer GENERATE group AS Customer,
    SUM(Orders.Total) AS Spent;
All = GROUP Totals ALL;
Best = FOREACH All GENERATE MAX(Totals.Spent) AS Top;
"""
        result = run(script, env)
        assert result.relation("Best").value_rows() == [(40,)]

    def test_aggregate_provenance_chains(self):
        env = orders_env()
        builder = GraphBuilder()
        builder.begin_invocation("M")
        result = run("""
ByCustomer = GROUP Orders BY Customer;
Totals = FOREACH ByCustomer GENERATE group AS Customer,
    SUM(Orders.Total) AS Spent;
All = GROUP Totals ALL;
Best = FOREACH All GENERATE MAX(Totals.Spent) AS Top;
""", env, builder)
        builder.end_invocation()
        graph = builder.graph
        best = result.relation("Best").rows[0]
        ancestor_kinds = {graph.node(a).kind for a in graph.ancestors(best.prov)}
        assert NodeKind.AGG in ancestor_kinds
        assert NodeKind.TENSOR in ancestor_kinds
        # The MAX depends on every base order tuple.
        base = {graph.node(a).label for a in graph.ancestors(best.prov)
                if graph.node(a).kind is NodeKind.TUPLE}
        assert len(base) == 4

    def test_avg_then_filter(self):
        env = orders_env()
        script = """
ByCustomer = GROUP Orders BY Customer;
Means = FOREACH ByCustomer GENERATE group AS Customer,
    AVG(Orders.Total) AS Mean;
Big = FILTER Means BY Mean > 10;
"""
        result = run(script, env)
        customers = sorted(row.values[0] for row in result.relation("Big").rows)
        assert customers == ["alice", "bob"]


class TestEmptyAndDegenerate:
    def test_everything_over_empty_input(self):
        env = {"E": Relation.empty(ORDERS)}
        script = """
F = FILTER E BY Total > 0;
G = GROUP E BY Customer;
D = DISTINCT E;
O = ORDER E BY Total;
L = LIMIT E 5;
P = FOREACH E GENERATE Customer;
"""
        result = run(script, env)
        for alias in "FGDOLP":
            assert len(result.relation(alias)) == 0

    def test_join_with_empty_side(self):
        env = orders_env()
        env["Empty"] = Relation.empty(Schema.of("Customer"))
        result = run("J = JOIN Orders BY Customer, Empty BY Customer;", env)
        assert len(result.relation("J")) == 0

    def test_union_of_three_empties(self):
        env = {name: Relation.empty(ORDERS) for name in ("A", "B", "C")}
        result = run("U = UNION A, B, C;", env)
        assert len(result.relation("U")) == 0

    def test_limit_beyond_size(self):
        result = run("L = LIMIT Orders 99;", orders_env())
        assert len(result.relation("L")) == 4

    def test_alias_shadowing_env_relation(self):
        # `Orders = FILTER Orders ...` reads the env relation then
        # rebinds the alias — the dealer scripts rely on this.
        env = orders_env()
        script = """
Orders = FILTER Orders BY Total > 10;
N = FOREACH Orders GENERATE OrderId;
"""
        result = run(script, env)
        assert len(result.relation("N")) == 2
        assert len(env["Orders"]) == 4  # env untouched


class TestSchemaInferenceCorners:
    def test_positional_in_general_foreach(self):
        env = orders_env()
        script = """
G = GROUP Orders BY Customer;
X = FOREACH G GENERATE $0, COUNT(Orders) AS N;
"""
        result = run(script, env)
        assert result.relation("X").schema.names[1] == "N"

    def test_static_flatten_fields_from_bag_field(self):
        # FLATTEN over an empty grouped relation: schema must come
        # from the bag field's element schema.
        env = {"E": Relation.empty(ORDERS)}
        result = run("""
G = GROUP E BY Customer;
X = FOREACH G GENERATE FLATTEN(E);
""", env)
        assert result.relation("X").schema.names == ORDERS.names

    def test_flatten_udf_without_schema_infers_from_rows(self):
        udfs = UDFRegistry()
        udfs.register("MakePair", lambda bag: [(len(bag), "tag")],
                      returns_bag=True)  # no output schema declared
        result = run("""
G = GROUP Orders BY Customer;
X = FOREACH G GENERATE FLATTEN(MakePair(Orders));
""", orders_env(), udfs=udfs)
        relation = result.relation("X")
        assert relation.schema.arity == 2
        assert sorted(relation.value_rows()) == [(1, "tag"), (1, "tag"),
                                                 (2, "tag")]

    def test_udf_scalar_flatten_behaves_like_scalar(self):
        udfs = UDFRegistry()
        udfs.register("One", lambda bag: 1)
        result = run("""
G = GROUP Orders BY Customer;
X = FOREACH G GENERATE group, FLATTEN(One(Orders));
""", orders_env(), udfs=udfs)
        assert len(result.relation("X")) == 3

    def test_group_key_expression(self):
        # Grouping by a computed key.
        result = run("G = GROUP Orders BY Total / 10;", orders_env())
        keys = sorted(row.values[0] for row in result.relation("G").rows)
        assert keys == [0.5, 1.0, 2.0, 3.0]


class TestProvenanceToggle:
    def test_untracked_has_no_graph_effects(self):
        builder = GraphBuilder()
        builder.begin_invocation("M")
        interpreter = Interpreter(builder, track_provenance=False)
        interpreter.execute("G = GROUP Orders BY Customer;", orders_env())
        builder.end_invocation()
        # Only the m-node exists.
        assert builder.graph.node_count == 1

    def test_partial_annotation_completion(self):
        env = orders_env()
        builder = GraphBuilder()
        builder.begin_invocation("M")
        interpreter = Interpreter(builder)
        # Pre-annotate one row, leave the rest to lazy annotation.
        env["Orders"].rows[0].prov = builder.base_tuple_node("pre")
        interpreter.execute("P = FOREACH Orders GENERATE OrderId;", env)
        builder.end_invocation()
        assert all(row.prov is not None for row in env["Orders"].rows)
