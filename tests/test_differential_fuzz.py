"""Randomized differential test harness for the Pig Latin pipeline.

Hypothesis generates small, *valid-by-construction* Pig Latin programs
(FILTER / FOREACH / DISTINCT / JOIN / GROUP / UNION over generated
relations) and runs each program twice:

* **tracked** — with a ``GraphBuilder``, exactly as a workflow module
  invocation would run it (the system under test); and
* **naive** — a fresh untracked interpreter over rebuilt relations
  (the reference oracle: plain bag semantics, no provenance at all).

The differential assertions: every alias's output rows agree between
the two runs (bag equality, provenance-blind), provenance never
perturbs data.  On top of that, the tracked run's graph must satisfy
the structural invariants the rest of the system leans on:
``check_consistency``, CSR-snapshot/adjacency agreement, acyclicity,
and a byte-stable JSONL round-trip.
"""

from __future__ import annotations

import io
from collections import Counter

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.datamodel import FieldType, Relation, Schema
from repro.graph import GraphBuilder
from repro.graph.serialize import dump_graph, load_graph
from repro.piglatin import Interpreter
from repro.queries.deletion import deletion_set, propagate_deletion
from repro.store import CSRSnapshot, SQLiteStore

R_SCHEMA = Schema.of(("a", FieldType.INT), ("b", FieldType.INT))
S_SCHEMA = Schema.of(("a", FieldType.INT), ("c", FieldType.INT))

_SMALL_INT = st.integers(min_value=0, max_value=4)
_COMPARATORS = ("==", "!=", "<", ">", "<=", ">=")


class _Alias:
    """What the generator knows about a bound alias.

    ``fields`` is the tuple of *plain* field names when they are safe
    to reference (base relations, FILTER/FOREACH/DISTINCT results);
    ``None`` after JOIN/GROUP, whose prefixed / bag-typed schemas make
    field references ambiguous — such aliases still feed the
    field-free operators (DISTINCT, UNION).  ``types`` is the field
    type shape (``"int"`` / ``"bag"`` tags) UNION compatibility is
    checked against.
    """

    __slots__ = ("name", "fields", "types")

    def __init__(self, name, fields, types):
        self.name = name
        self.fields = fields
        self.types = types

    @property
    def arity(self):
        return len(self.types)


@st.composite
def programs(draw):
    """(program text, R rows, S rows) with every statement valid."""
    r_rows = draw(st.lists(st.tuples(_SMALL_INT, _SMALL_INT),
                           min_size=0, max_size=6))
    s_rows = draw(st.lists(st.tuples(_SMALL_INT, _SMALL_INT),
                           min_size=0, max_size=5))
    aliases = [_Alias("R", ("a", "b"), ("int", "int")),
               _Alias("S", ("a", "c"), ("int", "int"))]
    statements = []
    count = draw(st.integers(min_value=1, max_value=5))
    for index in range(count):
        target = f"T{index}"
        simple = [alias for alias in aliases if alias.fields is not None]
        choices = ["filter", "foreach", "distinct", "group", "join"]
        unionable = [(x, y) for x in aliases for y in aliases
                     if x.name != y.name and x.types == y.types]
        if unionable:
            choices.append("union")
        op = draw(st.sampled_from(choices))
        if op == "filter":
            src = draw(st.sampled_from(simple))
            field = draw(st.sampled_from(src.fields))
            comparator = draw(st.sampled_from(_COMPARATORS))
            constant = draw(_SMALL_INT)
            statements.append(
                f"{target} = FILTER {src.name} BY "
                f"{field} {comparator} {constant};")
            result = _Alias(target, src.fields, src.types)
        elif op == "foreach":
            src = draw(st.sampled_from(simple))
            kept = draw(st.lists(st.sampled_from(src.fields), min_size=1,
                                 max_size=len(src.fields), unique=True))
            statements.append(
                f"{target} = FOREACH {src.name} GENERATE "
                f"{', '.join(kept)};")
            result = _Alias(target, tuple(kept), ("int",) * len(kept))
        elif op == "distinct":
            src = draw(st.sampled_from(aliases))
            statements.append(f"{target} = DISTINCT {src.name};")
            result = _Alias(target, src.fields, src.types)
        elif op == "group":
            src = draw(st.sampled_from(simple))
            field = draw(st.sampled_from(src.fields))
            statements.append(f"{target} = GROUP {src.name} BY {field};")
            result = _Alias(target, None, ("int", "bag"))
        elif op == "join":
            left = draw(st.sampled_from(simple))
            right = draw(st.sampled_from(
                [alias for alias in simple if alias.name != left.name]
                or simple))
            if right.name == left.name:
                # Only one simple alias left; fall back to DISTINCT to
                # keep the program valid (self-joins double-reference
                # one alias and are exercised elsewhere).
                statements.append(f"{target} = DISTINCT {left.name};")
                result = _Alias(target, left.fields, left.types)
            else:
                left_key = draw(st.sampled_from(left.fields))
                right_key = draw(st.sampled_from(right.fields))
                statements.append(
                    f"{target} = JOIN {left.name} BY {left_key}, "
                    f"{right.name} BY {right_key};")
                result = _Alias(target, None, left.types + right.types)
        else:  # union
            left, right = draw(st.sampled_from(unionable))
            statements.append(
                f"{target} = UNION {left.name}, {right.name};")
            # Field names come from the left input, but suffix-matching
            # could now be ambiguous; treat as field-free.
            result = _Alias(target, None, left.types)
        aliases.append(result)
    return "\n".join(statements), r_rows, s_rows


def _environment(r_rows, s_rows):
    return {"R": Relation.from_values(R_SCHEMA, r_rows),
            "S": Relation.from_values(S_SCHEMA, s_rows)}


def _row_bag(relation: Relation) -> Counter:
    """Provenance-blind multiset signature of a relation's rows."""
    return Counter(row.signature() for row in relation.rows)


def _run_tracked(program, r_rows, s_rows):
    builder = GraphBuilder()
    builder.begin_invocation("Mfuzz")
    interpreter = Interpreter(builder)
    result = interpreter.execute(program, _environment(r_rows, s_rows))
    builder.end_invocation()
    return result, builder.graph


def _run_naive(program, r_rows, s_rows):
    return Interpreter().execute(program, _environment(r_rows, s_rows))


_FUZZ_SETTINGS = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


class TestDifferentialExecution:
    @given(programs())
    @_FUZZ_SETTINGS
    def test_tracked_outputs_match_naive_reexecution(self, generated):
        program, r_rows, s_rows = generated
        tracked, _graph = _run_tracked(program, r_rows, s_rows)
        naive = _run_naive(program, r_rows, s_rows)
        assert tracked.relations.keys() == naive.relations.keys()
        for alias, relation in tracked.relations.items():
            assert _row_bag(relation) == _row_bag(naive.relations[alias]), \
                f"alias {alias!r} diverged for program:\n{program}"

    @given(programs())
    @_FUZZ_SETTINGS
    def test_tracked_execution_is_deterministic(self, generated):
        program, r_rows, s_rows = generated
        _result_a, graph_a = _run_tracked(program, r_rows, s_rows)
        _result_b, graph_b = _run_tracked(program, r_rows, s_rows)
        first, second = io.StringIO(), io.StringIO()
        dump_graph(graph_a, first)
        dump_graph(graph_b, second)
        assert first.getvalue() == second.getvalue()


class TestGraphInvariants:
    @given(programs())
    @_FUZZ_SETTINGS
    def test_graph_consistency_and_acyclicity(self, generated):
        program, r_rows, s_rows = generated
        _result, graph = _run_tracked(program, r_rows, s_rows)
        graph.check_consistency(warn_duplicates=False)
        assert graph.is_acyclic()

    @given(programs())
    @_FUZZ_SETTINGS
    def test_csr_snapshot_agrees_with_adjacency(self, generated):
        program, r_rows, s_rows = generated
        _result, graph = _run_tracked(program, r_rows, s_rows)
        snapshot = CSRSnapshot(graph)
        assert snapshot.node_count == graph.node_count
        assert snapshot.edge_count == graph.edge_count
        for node_id in graph.node_ids():
            assert sorted(snapshot.preds(node_id)) == \
                sorted(graph.preds(node_id))
            assert sorted(snapshot.succs(node_id)) == \
                sorted(graph.succs(node_id))
            assert snapshot.ancestors(node_id) == graph.ancestors(node_id)
            assert snapshot.descendants(node_id) == \
                graph.descendants(node_id)

class TestPushdownParity:
    """The SQL pushdown tier answers every query a CSR snapshot (and
    the deletion kernel) can, with identical results, on arbitrary
    generated DAGs — including after deletion propagation re-shapes
    the graph and forces a re-encode."""

    @given(programs())
    @_FUZZ_SETTINGS
    def test_pushdown_matches_kernels(self, generated):
        program, r_rows, s_rows = generated
        _result, graph = _run_tracked(program, r_rows, s_rows)
        store = SQLiteStore()
        try:
            store.put_graph("fuzz", graph)
            assert store.interval_state("fuzz") == "ready"
            view = store.pushdown("fuzz")
            assert view is not None
            snapshot = CSRSnapshot(graph)
            ids = list(graph.node_ids())
            for node_id in ids:
                assert view.ancestors(node_id) == \
                    snapshot.ancestors(node_id), program
                assert view.descendants(node_id) == \
                    snapshot.descendants(node_id), program
            for node_id in ids[::7]:
                pushed = view.subgraph(node_id)
                kernel = snapshot.subgraph(node_id)
                assert (pushed.ancestors, pushed.descendants,
                        pushed.siblings) == (kernel.ancestors,
                                             kernel.descendants,
                                             kernel.siblings), program
                assert view.deletion_set([node_id]) == \
                    deletion_set(graph, [node_id]), program
        finally:
            store.close()

    @given(programs())
    @_FUZZ_SETTINGS
    def test_pushdown_survives_deletion_and_reencode(self, generated):
        program, r_rows, s_rows = generated
        _result, graph = _run_tracked(program, r_rows, s_rows)
        seed = next(iter(graph.node_ids()))
        outcome = propagate_deletion(graph, [seed])
        survivor = outcome.graph
        if survivor.node_count == 0:
            return
        store = SQLiteStore()
        try:
            store.put_graph("fuzz", survivor)
            view = store.pushdown("fuzz")
            assert view is not None
            snapshot = CSRSnapshot(survivor)
            for node_id in survivor.node_ids():
                assert view.ancestors(node_id) == \
                    snapshot.ancestors(node_id), program
                assert view.descendants(node_id) == \
                    snapshot.descendants(node_id), program
        finally:
            store.close()


class TestSerializationStability:
    @given(programs())
    @_FUZZ_SETTINGS
    def test_jsonl_round_trip_is_byte_stable(self, generated):
        program, r_rows, s_rows = generated
        _result, graph = _run_tracked(program, r_rows, s_rows)
        first = io.StringIO()
        dump_graph(graph, first)
        rebuilt = load_graph(io.StringIO(first.getvalue()))
        assert rebuilt.node_count == graph.node_count
        assert rebuilt.edge_count == graph.edge_count
        rebuilt.check_consistency(warn_duplicates=False)
        second = io.StringIO()
        dump_graph(rebuilt, second)
        assert first.getvalue() == second.getvalue()
