"""SQL pushdown tier: interval encoder, range-scan query view, lazy
re-encode lifecycle, EXPLAIN attribution, and the store/catalog
correctness satellites that shipped with it."""

import io

import pytest

from repro.errors import UnknownNodeError, UnknownRunError
from repro.graph import GraphBuilder
from repro.graph.provgraph import ProvenanceGraph
from repro.graph.serialize import dump_graph
from repro.queries.deletion import deletion_set
from repro.queries.explain import explain_query
from repro.store import (
    CSRSnapshot,
    MemoryStore,
    ProvenanceService,
    RunCatalog,
    SQLiteStore,
    open_store,
)
from repro.store.pushdown import (
    INTERVALS_FALLBACK,
    INTERVALS_READY,
    INTERVALS_STALE,
    PushdownUnavailable,
    encode_intervals,
    interval_budget,
    pushdown_enabled,
)


def module_graph(fanout: int = 4) -> ProvenanceGraph:
    """A workflow-shaped DAG with >= 10 nodes and a joint (·) node."""
    builder = GraphBuilder()
    workflow_input = builder.workflow_input_node(value=("P1",))
    builder.begin_invocation("Mpush")
    module_input = builder.module_input_node(workflow_input, value=("P1",))
    base = builder.base_tuple_node("Cars", value=("C1",))
    state = builder.module_state_node(base)
    join = builder.times_node([module_input, state])
    output = builder.module_output_node(join, value=1.0)
    for index in range(fanout):
        builder.plus_node([output, join], value=float(index))
    builder.end_invocation()
    return builder.graph


# ----------------------------------------------------------------------
# Encoder
# ----------------------------------------------------------------------
class TestEncoder:
    def test_chain(self):
        rows = encode_intervals([0, 1, 2], [[], [0], [1]], budget=100)
        assert rows == [(0, 3, 1, 3, 0), (1, 2, 1, 2, 1), (2, 1, 1, 1, 2)]

    def test_diamond_merges_and_fragments(self):
        # 0 -> {1, 2} -> 3: the second branch keeps two intervals, the
        # root merges everything back into one.
        rows = encode_intervals([0, 1, 2, 3],
                                [[], [0], [0], [1, 2]], budget=100)
        by_node = {}
        for node_id, post, lo, hi, level in rows:
            by_node.setdefault(node_id, []).append((lo, hi))
        assert by_node[0] == [(1, 4)]
        assert by_node[3] == [(1, 1)]
        assert sorted(len(spans) for spans in by_node.values()) \
            == [1, 1, 1, 2]
        levels = {node_id: level for node_id, _, _, _, level in rows}
        assert levels == {0: 0, 1: 1, 2: 1, 3: 2}

    def test_empty_graph(self):
        assert encode_intervals([], [], budget=100) == []

    def test_cycle_returns_none(self):
        assert encode_intervals([0, 1], [[1], [0]], budget=100) is None

    def test_unreached_cycle_component_returns_none(self):
        # 0 is a root, but 1 <-> 2 sit on an unreachable cycle.
        assert encode_intervals([0, 1, 2],
                                [[], [2], [1]], budget=100) is None

    def test_budget_abort_returns_none(self):
        assert encode_intervals([0, 1, 2], [[], [0], [1]],
                                budget=2) is None

    def test_noncontiguous_node_ids(self):
        # Deletion leaves id gaps; views are indexed by id, not rank.
        pred_views = {3: [], 7: [3], 9: [3, 7]}
        rows = encode_intervals([3, 7, 9], pred_views, budget=100)
        assert {row[0] for row in rows} == {3, 7, 9}

    def test_budget_floor(self):
        assert interval_budget(0) == 1024
        assert interval_budget(1000) == 8000

    def test_env_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PUSHDOWN", "0")
        assert not pushdown_enabled()
        monkeypatch.setenv("REPRO_PUSHDOWN", "1")
        assert pushdown_enabled()


# ----------------------------------------------------------------------
# Store lifecycle: ready / stale / fallback
# ----------------------------------------------------------------------
class TestIntervalLifecycle:
    def test_put_encodes_eagerly(self):
        store = SQLiteStore()
        store.put_graph("r", module_graph())
        assert store.interval_state("r") == INTERVALS_READY
        assert store.pushdown("r") is not None
        store.close()

    def test_append_marks_stale_then_query_reencodes(self):
        store = SQLiteStore()
        store.put_graph("r", module_graph(fanout=2))
        store.append_graph("r", module_graph(fanout=5))
        assert store.interval_state("r") == INTERVALS_STALE
        view = store.pushdown("r")  # lazy re-encode happens here
        assert store.interval_state("r") == INTERVALS_READY
        loaded = store.load_graph("r")
        snapshot = CSRSnapshot(loaded)
        for node_id in loaded.node_ids():
            assert view.descendants(node_id) == snapshot.descendants(node_id)
            assert view.ancestors(node_id) == snapshot.ancestors(node_id)
        store.close()

    def test_held_view_refreshes_after_append(self):
        store = SQLiteStore()
        store.put_graph("r", module_graph(fanout=2))
        view = store.pushdown("r")
        before = len(view.descendants(0))
        store.append_graph("r", module_graph(fanout=6))
        # The *same* view object must serve the superseding encoding.
        assert len(view.descendants(0)) > before
        store.close()

    def test_fallback_state_disables_view(self):
        store = SQLiteStore()
        store.put_graph("r", module_graph())
        with store._write_lock:
            store._conn.execute(
                "UPDATE runs SET interval_state = ? WHERE run_id = ?",
                (INTERVALS_FALLBACK, "r"))
            store._conn.commit()
        assert store.pushdown("r") is None
        store.close()

    def test_held_view_raises_when_encoding_vanishes(self):
        store = SQLiteStore()
        store.put_graph("r", module_graph())
        view = store.pushdown("r")
        with store._write_lock:
            store._conn.execute(
                "UPDATE runs SET interval_state = ? WHERE run_id = ?",
                (INTERVALS_FALLBACK, "r"))
            store._conn.commit()
        with pytest.raises(PushdownUnavailable):
            view.descendants(0)
        store.close()

    def test_disabled_env_skips_encode_and_view(self, monkeypatch):
        monkeypatch.setenv("REPRO_PUSHDOWN", "0")
        store = SQLiteStore()
        store.put_graph("r", module_graph())
        assert store.interval_state("r") is None
        assert store.pushdown("r") is None
        store.close()

    def test_unknown_run(self):
        store = SQLiteStore()
        with pytest.raises(UnknownRunError):
            store.interval_state("ghost")
        assert store.pushdown("ghost") is None
        store.close()

    def test_delete_run_clears_interval_rows(self):
        store = SQLiteStore()
        store.put_graph("r", module_graph())
        store.delete_run("r")
        count = store._conn.execute(
            "SELECT COUNT(*) FROM node_intervals").fetchone()[0]
        assert count == 0
        store.close()

    def test_memory_store_has_no_pushdown(self):
        store = MemoryStore()
        store.put_graph("r", module_graph())
        assert store.pushdown("r") is None

    def test_sharded_store_routes_pushdown(self, tmp_path):
        store = open_store(tmp_path / "shards.db", shards=2)
        store.put_graph("r-a", module_graph())
        view = store.pushdown("r-a")
        assert view is not None
        assert view.descendants(0)
        store.close()

    def test_preexisting_db_migrates(self, tmp_path):
        # A database written before this tier existed has neither the
        # interval_state column nor the node_intervals table; opening
        # it must migrate, and the first query must encode lazily.
        path = tmp_path / "old.db"
        store = SQLiteStore(path)
        store.put_graph("r", module_graph())
        with store._write_lock:
            store._conn.execute("DROP TABLE node_intervals")
            store._conn.execute(
                "UPDATE runs SET interval_state = NULL")
            store._conn.commit()
        store.close()
        reopened = SQLiteStore(path)
        try:
            assert reopened.interval_state("r") is None
            view = reopened.pushdown("r")
            assert view is not None
            assert reopened.interval_state("r") == INTERVALS_READY
        finally:
            reopened.close()


# ----------------------------------------------------------------------
# Query parity against the in-memory kernels
# ----------------------------------------------------------------------
class TestViewParity:
    @pytest.fixture(scope="class")
    def served(self, dealership_execution):
        graph = dealership_execution[0]
        store = SQLiteStore()
        store.put_graph("r", graph)
        yield store.pushdown("r"), CSRSnapshot(graph), graph
        store.close()

    def test_ancestors_descendants(self, served):
        view, snapshot, graph = served
        for node_id in graph.node_ids():
            assert view.ancestors(node_id) == snapshot.ancestors(node_id)
            assert view.descendants(node_id) == \
                snapshot.descendants(node_id)

    def test_subgraph(self, served):
        view, snapshot, graph = served
        for node_id in list(graph.node_ids())[::17]:
            pushed = view.subgraph(node_id)
            kernel = snapshot.subgraph(node_id)
            assert pushed.ancestors == kernel.ancestors
            assert pushed.descendants == kernel.descendants
            assert pushed.siblings == kernel.siblings

    def test_deletion_set(self, served):
        view, _snapshot, graph = served
        for node_id in list(graph.node_ids())[::31]:
            assert view.deletion_set([node_id]) == \
                deletion_set(graph, [node_id])
            assert view.deletion_set([node_id],
                                     blackbox_multiplicative=True) == \
                deletion_set(graph, [node_id],
                             blackbox_multiplicative=True)

    def test_reachable_contract(self, served):
        view, snapshot, graph = served
        ids = list(graph.node_ids())
        for source, target in zip(ids[::13], ids[7::13]):
            assert view.reachable(source, target) == \
                snapshot.reachable(source, target)
        # Contract edges mirrored from CSRSnapshot.
        assert view.reachable(10**9, 10**9) is True
        assert view.reachable(ids[0], 10**9) is False
        with pytest.raises(UnknownNodeError):
            view.reachable(10**9, ids[0])

    def test_unknown_node_raises(self, served):
        view, _snapshot, _graph = served
        with pytest.raises(UnknownNodeError):
            view.ancestors(10**9)
        with pytest.raises(UnknownNodeError):
            view.descendants(10**9)
        assert view.has_node(10**9) is False


# ----------------------------------------------------------------------
# Service wiring + EXPLAIN attribution
# ----------------------------------------------------------------------
class TestServiceTierSelection:
    @pytest.fixture
    def store(self):
        store = SQLiteStore()
        store.put_graph("r", module_graph())
        yield store
        store.close()

    def test_cold_query_never_builds_a_graph(self, store):
        service = ProvenanceService(store)
        plan = explain_query(service, "r", "ancestors", node=5)
        tiers = {step.tier for step in plan.steps}
        names = [step.name for step in plan.steps]
        assert tiers == {"sqlite-pushdown"}
        assert not any("load" in name or "graph" in name
                       for name in names), names

    def test_cold_tiers_for_all_pushdown_kinds(self, store):
        for kind, kwargs in (
                ("subgraph", {"node": 5}),
                ("descendants", {"node": 1}),
                ("deletion", {"nodes": [0]}),
                ("reachability", {"source": 0, "target": 6})):
            service = ProvenanceService(store)  # fresh = cold caches
            plan = explain_query(service, "r", kind, **kwargs)
            assert {step.tier for step in plan.steps} \
                == {"sqlite-pushdown"}, kind

    def test_hot_run_keeps_memory_tiers(self, store):
        service = ProvenanceService(store)
        service.graph("r")  # warm the LRU: zoom surgery could live here
        plan = explain_query(service, "r", "subgraph", node=5)
        assert "sqlite-pushdown" not in {step.tier for step in plan.steps}

    def test_fallback_run_served_by_csr(self, store):
        with store._write_lock:
            store._conn.execute(
                "UPDATE runs SET interval_state = ? WHERE run_id = ?",
                (INTERVALS_FALLBACK, "r"))
            store._conn.commit()
        service = ProvenanceService(store)
        graph = store.load_graph("r")
        assert service.ancestors("r", 5) == graph.ancestors(5)
        assert service.descendants("r", 1) == graph.descendants(1)

    def test_service_answers_match_kernels_cold_and_hot(self, store):
        graph = store.load_graph("r")
        snapshot = CSRSnapshot(graph)
        cold = ProvenanceService(store)
        for node_id in graph.node_ids():
            assert cold.ancestors("r", node_id) == \
                snapshot.ancestors(node_id)
            assert cold.descendants("r", node_id) == \
                snapshot.descendants(node_id)
        assert cold.deletion_set("r", [0]) == deletion_set(graph, [0])
        hot = ProvenanceService(store)
        hot.graph("r")
        assert hot.deletion_set("r", [0]) == deletion_set(graph, [0])


# ----------------------------------------------------------------------
# Satellites: store/catalog correctness fixes
# ----------------------------------------------------------------------
class TestCatalogInvalidation:
    def test_delete_then_reingest_serves_fresh_graph(self):
        """Regression: catalog.delete must evict the service's cached
        artifacts, or a re-ingested run id serves the old graph."""
        store = SQLiteStore()
        service = ProvenanceService(store)
        service.catalog.register(module_graph(fanout=2), run_id="r")
        before = service.graph("r").node_count  # cache the first graph
        service.catalog.delete("r")
        service.catalog.register(module_graph(fanout=6), run_id="r")
        after = service.graph("r").node_count
        assert after == before + 4
        assert service.subgraph("r", 0).size > 0
        store.close()


class TestBusyTimeoutEverywhere:
    def test_memory_connection_has_busy_timeout(self):
        store = SQLiteStore()
        timeout = store._conn.execute(
            "PRAGMA busy_timeout").fetchone()[0]
        assert timeout == 10000
        store.close()

    def test_file_connection_has_busy_timeout(self, tmp_path):
        store = SQLiteStore(tmp_path / "t.db")
        timeout = store._conn.execute(
            "PRAGMA busy_timeout").fetchone()[0]
        assert timeout == 10000
        store.close()


class TestCatalogReprIsIOFree:
    def test_repr_never_touches_the_store(self):
        class ExplodingStore:
            def list_runs(self):
                raise AssertionError("repr must not do store I/O")

            def __getattr__(self, name):
                raise AssertionError("repr must not do store I/O")

            def __repr__(self):
                return "ExplodingStore()"

        catalog = RunCatalog.__new__(RunCatalog)
        catalog.store = ExplodingStore()
        catalog.run_prefix = "run"
        assert "ExplodingStore()" in repr(catalog)


class TestDeterminism:
    def test_jsonl_round_trip_is_byte_identical(self):
        graph = module_graph(fanout=6)
        assert graph.node_count >= 10
        store = SQLiteStore()
        store.put_graph("r", graph)
        original, reloaded = io.StringIO(), io.StringIO()
        dump_graph(graph, original)
        # load_graph's ORDER BY node_id makes the rebuilt dump
        # byte-identical, not just isomorphic.
        dump_graph(store.load_graph("r"), reloaded)
        assert original.getvalue() == reloaded.getvalue()
        store.close()

    def test_eager_and_lazy_encodes_are_identical(self):
        """The ingest-time encode (live graph) and the lazy re-encode
        (stored rows) must emit identical node_intervals rows."""
        store = SQLiteStore()
        store.put_graph("r", module_graph(fanout=6))
        query = ("SELECT node_id, post, lo, hi, level FROM node_intervals "
                 "WHERE run_id = ? ORDER BY node_id, lo")
        eager = store._conn.execute(query, ("r",)).fetchall()
        with store._write_lock:
            store._conn.execute(
                "UPDATE runs SET interval_state = ? WHERE run_id = ?",
                (INTERVALS_STALE, "r"))
            store._conn.commit()
        assert store.ensure_intervals("r")
        lazy = store._conn.execute(query, ("r",)).fetchall()
        assert eager and eager == lazy
        store.close()
