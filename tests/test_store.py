"""Unit tests for the provenance store subsystem (repro.store)."""

from __future__ import annotations

import os

import pytest

from repro.errors import StoreError, UnknownNodeError, UnknownRunError
from repro.graph import GraphBuilder, NodeKind, ProvenanceGraph
from repro.lipstick import Lipstick, QueryProcessor
from repro.queries import ReachabilityIndex, subgraph_query
from repro.queries.subgraph import highest_fanout_nodes
from repro.store import (
    CSRSnapshot,
    MemoryStore,
    ProvenanceService,
    RunCatalog,
    SQLiteStore,
    open_store,
)


def sample_graph() -> ProvenanceGraph:
    """A small graph with every payload shape the codec must survive."""
    builder = GraphBuilder()
    workflow_input = builder.workflow_input_node(value=("P1", "B1", "Civic"))
    invocation = builder.begin_invocation("Mdealer1")
    input_node = builder.module_input_node(workflow_input,
                                           value=("P1", "B1", "Civic"))
    base = builder.base_tuple_node("Cars", value=("C2", "Civic"))
    state = builder.module_state_node(base)
    join = builder.times_node([input_node, state])
    builder.module_output_node(join, value=3.5)
    builder.value_node(None)
    builder.value_node("free-text")
    builder.end_invocation()
    assert invocation.input_nodes
    return builder.graph


def assert_graphs_equal(left: ProvenanceGraph, right: ProvenanceGraph):
    assert left.node_count == right.node_count
    assert left.edge_count == right.edge_count
    assert set(left.nodes) == set(right.nodes)
    for node_id in left.nodes:
        a, b = left.node(node_id), right.node(node_id)
        assert (a.kind, a.label, a.ntype, a.module, a.invocation, a.value) \
            == (b.kind, b.label, b.ntype, b.module, b.invocation, b.value)
        assert left.preds(node_id) == right.preds(node_id)
    assert set(left.invocations) == set(right.invocations)
    for invocation_id, a in left.invocations.items():
        b = right.invocations[invocation_id]
        assert a.module_name == b.module_name
        assert a.module_node == b.module_node
        assert a.input_nodes == b.input_nodes
        assert a.output_nodes == b.output_nodes
        assert a.state_nodes == b.state_nodes


# ----------------------------------------------------------------------
# MemoryStore
# ----------------------------------------------------------------------
class TestMemoryStore:
    def test_put_load_adopts_graph(self):
        store = MemoryStore()
        graph = sample_graph()
        info = store.put_graph("r1", graph)
        assert info.node_count == graph.node_count
        assert store.load_graph("r1") is graph

    def test_copy_on_write_isolates(self):
        store = MemoryStore(copy_on_write=True)
        graph = sample_graph()
        store.put_graph("r1", graph)
        loaded = store.load_graph("r1")
        assert loaded is not graph
        assert_graphs_equal(loaded, graph)

    def test_unknown_run(self):
        store = MemoryStore()
        with pytest.raises(UnknownRunError):
            store.load_graph("missing")
        with pytest.raises(UnknownRunError):
            store.delete_run("missing")
        assert not store.has_run("missing")

    def test_list_and_delete(self):
        store = MemoryStore()
        store.put_graph("a", sample_graph())
        store.put_graph("b", sample_graph())
        assert [info.run_id for info in store.list_runs()] == ["a", "b"]
        store.delete_run("a")
        assert [info.run_id for info in store.list_runs()] == ["b"]

    def test_run_info_tracks_live_mutations(self):
        store = MemoryStore()
        graph = sample_graph()
        store.put_graph("r1", graph)
        before = store.run_info("r1").node_count
        graph.add_node(NodeKind.VALUE, value=7)
        assert store.run_info("r1").node_count == before + 1


# ----------------------------------------------------------------------
# SQLiteStore
# ----------------------------------------------------------------------
class TestSQLiteStore:
    def test_round_trip(self, tmp_path):
        with SQLiteStore(tmp_path / "prov.db") as store:
            graph = sample_graph()
            store.put_graph("r1", graph)
            assert_graphs_equal(store.load_graph("r1"), graph)

    def test_survives_the_process(self, tmp_path):
        path = tmp_path / "prov.db"
        graph = sample_graph()
        with SQLiteStore(path) as store:
            store.put_graph("r1", graph, source="unit-test")
        # Fresh connection: everything must come back from disk.
        with SQLiteStore(path) as store:
            info = store.run_info("r1")
            assert info.source == "unit-test"
            assert_graphs_equal(store.load_graph("r1"), graph)

    def test_put_replaces(self, tmp_path):
        with SQLiteStore(tmp_path / "prov.db") as store:
            store.put_graph("r1", sample_graph())
            small = ProvenanceGraph()
            small.add_node(NodeKind.TUPLE, "only")
            store.put_graph("r1", small)
            assert_graphs_equal(store.load_graph("r1"), small)

    def test_incremental_append_matches_full_put(self, tmp_path):
        with SQLiteStore(tmp_path / "prov.db") as store:
            builder = GraphBuilder()
            invocation_count = 0
            for step in range(3):
                builder.begin_invocation(f"M{step}")
                tuple_node = builder.base_tuple_node("R", value=(step,))
                state = builder.module_state_node(tuple_node)
                builder.module_output_node(state)
                builder.end_invocation()
                invocation_count += 1
                info = store.append_graph("inc", builder.graph)
                assert info.invocation_count == invocation_count
            store.put_graph("full", builder.graph)
            assert_graphs_equal(store.load_graph("inc"),
                                store.load_graph("full"))

    def test_append_refuses_shrunk_graph(self, tmp_path):
        with SQLiteStore(tmp_path / "prov.db") as store:
            store.put_graph("r1", sample_graph())
            with pytest.raises(StoreError):
                store.append_graph("r1", ProvenanceGraph())

    def test_append_refuses_unrelated_graph(self, tmp_path):
        """Appending a different graph of similar size must not
        silently interleave the two into one corrupted run."""
        first = ProvenanceGraph()
        a = first.add_node(NodeKind.TUPLE, "a")
        b = first.add_node(NodeKind.PLUS)
        first.add_edge(a, b)
        other = ProvenanceGraph()
        x = other.add_node(NodeKind.TUPLE, "x")
        y = other.add_node(NodeKind.PLUS)
        other.add_node(NodeKind.TUPLE, "z")
        other.add_edge(x, y)  # node b/y: 1 operand in both, but...
        other.remove_node(x)  # ...now y has 0 operands: shrinks
        with SQLiteStore(tmp_path / "prov.db") as store:
            store.put_graph("r1", first)
            with pytest.raises(StoreError):
                store.append_graph("r1", other)

    def test_delete_run(self, tmp_path):
        with SQLiteStore(tmp_path / "prov.db") as store:
            store.put_graph("r1", sample_graph())
            store.delete_run("r1")
            assert not store.has_run("r1")
            with pytest.raises(UnknownRunError):
                store.load_graph("r1")

    def test_jsonl_import_export(self, tmp_path):
        graph = sample_graph()
        spool = tmp_path / "spool.jsonl.gz"
        from repro.graph import dump_graph
        dump_graph(graph, spool)
        with SQLiteStore(tmp_path / "prov.db") as store:
            info = store.import_jsonl("r1", spool)
            assert info.source == os.fspath(spool)
            out = tmp_path / "export.jsonl"
            records = store.export_jsonl("r1", out)
            assert records > 0
            from repro.graph import load_graph
            assert_graphs_equal(load_graph(out), graph)

    def test_open_store_dispatch(self, tmp_path):
        assert isinstance(open_store(None), MemoryStore)
        store = open_store(tmp_path / "x.db")
        assert isinstance(store, SQLiteStore)
        store.close()


# ----------------------------------------------------------------------
# CSRSnapshot
# ----------------------------------------------------------------------
class TestCSRSnapshot:
    def test_matches_graph_api(self, dealership_execution):
        graph = dealership_execution[0]
        snapshot = CSRSnapshot(graph)
        assert snapshot.node_count == graph.node_count
        assert snapshot.edge_count == graph.edge_count
        for node_id in list(graph.node_ids())[::7]:
            assert snapshot.preds(node_id) == graph.preds(node_id)
            assert snapshot.succs(node_id) == graph.succs(node_id)
            assert snapshot.in_degree(node_id) == graph.in_degree(node_id)
            assert snapshot.out_degree(node_id) == graph.out_degree(node_id)

    def test_traversals_agree_with_graph(self, dealership_execution):
        graph = dealership_execution[0]
        snapshot = CSRSnapshot(graph)
        for node_id in highest_fanout_nodes(graph, 15):
            assert snapshot.ancestors(node_id) == graph.ancestors(node_id)
            assert snapshot.descendants(node_id) == graph.descendants(node_id)
            expected = subgraph_query(graph, node_id)
            actual = snapshot.subgraph(node_id)
            assert actual.ancestors == expected.ancestors
            assert actual.descendants == expected.descendants
            assert actual.siblings == expected.siblings

    def test_reachable(self):
        graph = sample_graph()
        snapshot = CSRSnapshot(graph)
        for source in graph.node_ids():
            for target in graph.node_ids():
                assert snapshot.reachable(source, target) \
                    == graph.reachable(source, target)

    def test_reachable_contract_matches_dict_on_unknown_ids(self):
        """Same answers as ProvenanceGraph.reachable at the edges of
        the contract: unknown target is unreachable, source==target is
        trivially reachable, unknown source raises."""
        graph = sample_graph()
        snapshot = CSRSnapshot(graph)
        known = next(iter(graph.nodes))
        assert snapshot.reachable(99999, 99999) \
            == graph.reachable(99999, 99999) is True
        assert snapshot.reachable(known, 99999) \
            == graph.reachable(known, 99999) is False
        with pytest.raises(UnknownNodeError):
            graph.reachable(99999, known)
        with pytest.raises(UnknownNodeError):
            snapshot.reachable(99999, known)

    def test_sparse_ids_after_surgery(self):
        graph = sample_graph()
        doomed = next(iter(graph.nodes))
        graph.remove_node(doomed)
        snapshot = CSRSnapshot(graph)
        assert not snapshot.has_node(doomed)
        with pytest.raises(UnknownNodeError):
            snapshot.subgraph(doomed)
        for node_id in graph.node_ids():
            assert snapshot.ancestors(node_id) == graph.ancestors(node_id)

    def test_unknown_node(self):
        snapshot = CSRSnapshot(sample_graph())
        with pytest.raises(UnknownNodeError):
            snapshot.descendants(10_000)

    def test_empty_graph(self):
        snapshot = CSRSnapshot(ProvenanceGraph())
        assert snapshot.node_count == 0
        assert list(snapshot.node_ids()) == []
        assert snapshot.memory_bytes() > 0  # offset sentinels

    def test_staleness(self):
        graph = sample_graph()
        snapshot = CSRSnapshot(graph)
        assert snapshot.matches(graph)
        graph.add_node(NodeKind.VALUE, value=1)
        assert not snapshot.matches(graph)


# ----------------------------------------------------------------------
# QueryProcessor integration
# ----------------------------------------------------------------------
class TestQueryProcessorStore:
    def test_from_store_csr_equals_dict(self, tmp_path, dealership_execution):
        graph = dealership_execution[0]
        with SQLiteStore(tmp_path / "prov.db") as store:
            store.put_graph("r1", graph)
            fast = QueryProcessor.from_store(store, "r1")
            slow = QueryProcessor.from_store(store, "r1", csr=False)
            assert fast._current_csr() is not None
            assert slow._current_csr() is None
            for node_id in highest_fanout_nodes(graph, 5):
                a, b = fast.subgraph(node_id), slow.subgraph(node_id)
                assert a.node_ids == b.node_ids
                assert fast.ancestors(node_id) == slow.ancestors(node_id)
                assert fast.descendants(node_id) == slow.descendants(node_id)

    def test_csr_falls_back_after_mutation(self):
        graph = sample_graph()
        processor = QueryProcessor(graph)
        processor.enable_csr()
        assert processor._current_csr() is not None
        node_id = next(iter(graph.nodes))
        processor.delete(node_id, in_place=True)
        assert processor._current_csr() is None
        survivor = next(iter(processor.graph.nodes))
        # Still answers correctly on the dict path.
        assert processor.subgraph(survivor).root == survivor

    def test_lipstick_commit_and_requery(self, tmp_path):
        store = SQLiteStore(tmp_path / "prov.db")
        lipstick = Lipstick(store=store, run_id="session")
        with pytest.raises(RuntimeError):
            Lipstick(track_provenance=False, store=store).commit()
        with pytest.raises(RuntimeError):
            Lipstick().commit()  # no store attached
        builder = lipstick.tracker.builder
        builder.begin_invocation("M")
        tuple_node = builder.base_tuple_node("R", value=(1,))
        builder.module_output_node(tuple_node)
        builder.end_invocation()
        info = lipstick.commit()
        assert info.run_id == "session"
        processor = lipstick.query_processor(run_id="session")
        assert processor.graph.node_count == lipstick.graph.node_count
        store.close()

    def test_default_run_ids_are_unique(self):
        first, second = Lipstick(), Lipstick()
        assert first.run_id != second.run_id


# ----------------------------------------------------------------------
# RunCatalog + ProvenanceService
# ----------------------------------------------------------------------
class TestRunCatalog:
    def test_auto_run_ids(self):
        catalog = RunCatalog(MemoryStore())
        first = catalog.register(sample_graph())
        second = catalog.register(sample_graph())
        assert first.run_id == "run-0001"
        assert second.run_id == "run-0002"

    def test_ingest_and_export_round_trip(self, tmp_path):
        from repro.graph import dump_graph, load_graph
        graph = sample_graph()
        spool = tmp_path / "spool.jsonl"
        dump_graph(graph, spool)
        catalog = RunCatalog(MemoryStore())
        info = catalog.ingest(spool)
        assert [run.run_id for run in catalog.runs()] == [info.run_id]
        out = tmp_path / "round.jsonl.gz"
        catalog.export(info.run_id, out)
        assert_graphs_equal(load_graph(out), graph)
        catalog.delete(info.run_id)
        assert catalog.runs() == []


class TestProvenanceService:
    @pytest.fixture
    def service(self, dealership_execution):
        store = MemoryStore()
        store.put_graph("run-a", dealership_execution[0])
        store.put_graph("run-b", sample_graph())
        return ProvenanceService(store)

    def test_queries_per_run(self, service, dealership_execution):
        graph = dealership_execution[0]
        node = highest_fanout_nodes(graph, 1)[0]
        expected = subgraph_query(graph, node)
        actual = service.subgraph("run-a", node)
        assert actual.node_ids == expected.node_ids
        assert service.descendants("run-a", node) == graph.descendants(node)
        assert service.stats("run-b").node_count == sample_graph().node_count

    def test_csr_cache_hits(self, service, dealership_execution):
        node = highest_fanout_nodes(dealership_execution[0], 1)[0]
        first = service.csr("run-a")
        second = service.csr("run-a")
        assert first is second
        service.subgraph("run-a", node)
        hits, _misses = service.cache_stats()["csr"]
        assert hits >= 2

    def test_cache_invalidation_on_mutation(self, service):
        snapshot = service.csr("run-a")
        graph = service.graph("run-a")
        graph.add_node(NodeKind.VALUE, value=0)
        fresh = service.csr("run-a")
        assert fresh is not snapshot
        assert fresh.matches(graph)

    def test_reachability_index_cached(self, service, dealership_execution):
        graph = dealership_execution[0]
        index = service.reachability_index("run-a")
        assert service.reachability_index("run-a") is index
        node = highest_fanout_nodes(graph, 1)[0]
        assert index.descendants(node) == graph.descendants(node)

    def test_delete_serves_a_copy(self, service):
        before = service.graph("run-a").node_count
        node = next(iter(service.graph("run-a").nodes))
        result = service.delete("run-a", node)
        assert result.removed
        assert service.graph("run-a").node_count == before

    def test_zoom_round_trip(self, service, dealership_execution):
        graph = dealership_execution[0]
        before = graph.node_count
        module = next(iter(graph.module_names()))
        service.zoom_out("run-a", [module])
        assert service.graph("run-a").node_count != before
        service.zoom_in("run-a", [module])
        assert service.graph("run-a").node_count == before

    def test_processor_rebuilt_after_graph_reload(self):
        """A cached processor must not outlive its graph object when
        the graph cache reloads behind it (LRU divergence)."""
        store = MemoryStore(copy_on_write=True)
        store.put_graph("a", sample_graph())
        store.put_graph("b", sample_graph())
        service = ProvenanceService(store, graph_cache_size=1)
        processor = service.processor("a")
        service.graph("b")  # evicts run a's graph
        refreshed = service.processor("a")
        assert refreshed is not processor
        assert refreshed.graph is service.graph("a")

    def test_invalidate(self, service):
        graph = service.graph("run-a")
        service.invalidate("run-a")
        # Memory store adopts graphs, so a reload returns the same
        # object — but it must have gone back to the store for it.
        _misses_before = service.cache_stats()["graphs"][1]
        assert service.graph("run-a") is graph
        assert service.cache_stats()["graphs"][1] == _misses_before + 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_ingest_query_runs(self, tmp_path, capsys):
        from repro.cli import main
        db = os.fspath(tmp_path / "cli.db")
        spool = tmp_path / "spool.jsonl.gz"
        from repro.graph import dump_graph
        dump_graph(sample_graph(), spool)

        assert main(["ingest", "--db", db, "--run", "demo",
                     "--spool", os.fspath(spool)]) == 0
        assert "ingested demo" in capsys.readouterr().out

        assert main(["runs", "--db", db]) == 0
        assert "demo" in capsys.readouterr().out

        assert main(["query", "--db", db, "--run", "demo",
                     "--subgraph", "0"]) == 0
        out = capsys.readouterr().out
        assert "subgraph(0)" in out

        assert main(["query", "--db", db, "--subgraph", "0",
                     "--backend", "dict"]) == 0
        assert capsys.readouterr().out == out  # backends agree

        assert main(["query", "--db", db, "--stats"]) == 0
        assert "nodes=" in capsys.readouterr().out

    def test_query_errors(self, tmp_path, capsys):
        from repro.cli import main
        db = os.fspath(tmp_path / "empty.db")
        assert main(["query", "--db", db, "--stats"]) == 1
        assert "no runs" in capsys.readouterr().err
        # Unknown run id on a populated store.
        from repro.store import SQLiteStore
        with SQLiteStore(db) as store:
            store.put_graph("r1", sample_graph())
        assert main(["query", "--db", db, "--run", "nope",
                     "--stats"]) == 1
        assert "unknown run" in capsys.readouterr().err

    def test_experiment_passthrough(self, capsys):
        from repro.cli import main
        assert main(["definitely-not-a-command"]) == 2
        assert "unknown experiments" in capsys.readouterr().out
