"""Shape tests for the remaining runner experiments (6c, 7c, 5c,
delete) at tiny scale, plus the Lipstick facade's what-if/text-query
entry points."""

import pytest

from repro import Lipstick
from repro.benchmark.runner import (
    experiment_delete,
    experiment_fig5c,
    experiment_fig6c,
    experiment_fig7c,
)


class TestRemainingExperiments:
    def test_fig5c_rows(self):
        rows = experiment_fig5c(num_cars=20)
        counts = [row[0] for row in rows]
        assert counts[0] == 2 and counts[-1] == 54
        best = max(rows, key=lambda row: row[1])
        assert 2 <= best[0] <= 4

    def test_fig6c_rows(self):
        rows = experiment_fig6c(num_stations=2, num_exec=1, history_years=1)
        assert [row[0] for row in rows] == ["all", "season", "month", "year"]
        assert all(len(row) == 5 for row in rows)
        assert all(cell > 0 for row in rows for cell in row[1:])

    def test_fig7c_rows(self):
        rows = experiment_fig7c(num_stations=2, num_exec=1,
                                history_years=1, node_count=3)
        assert len(rows) == 4
        assert all(cell >= 0 for row in rows for cell in row[1:])

    def test_delete_rows(self):
        rows = experiment_delete(num_cars=12, num_exec=2, node_count=5)
        assert len(rows) == 5
        for removed, milliseconds in rows:
            assert removed >= 1
            assert milliseconds >= 0


class TestFacadeExtensions:
    @pytest.fixture(scope="class")
    def processor(self):
        from repro.benchmark.dealerships import (
            DealershipRun,
            build_dealership_workflow,
        )

        workflow, modules = build_dealership_workflow()
        lipstick = Lipstick()
        executor = lipstick.executor(workflow, modules)
        run = DealershipRun(num_cars=12, num_exec=1, seed=3)
        run.buyer.accept_probability = 0.0
        run.run(executor, run.initial_state(executor))
        return lipstick.query_processor()

    def test_query_text(self, processor):
        count = processor.query_text("MATCH kind=module | count")
        assert count == 12  # one execution: 12 invocations

    def test_what_if(self, processor):
        victim = processor.query_text(
            "MATCH kind=tuple label~Cars | labels")[0]
        outcome = processor.what_if(tuple_labels=[victim])
        assert outcome.deletion.removed_count >= 1

    def test_main_module_entry(self):
        import repro.__main__  # noqa: F401 - importable without running
