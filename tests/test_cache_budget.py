"""Byte-budget LRU eviction and the structured doctor report.

PR satellites: ``REPRO_CACHE_BUDGET_MB`` caps the catalog caches by
*bytes* (not just entry count), publishing ``cache.<name>.bytes``
gauges; and ``repro doctor --json`` emits a flat ``diagnoses`` list
scripts can consume without knowing seven different record shapes.
"""

from __future__ import annotations

import json

import pytest

from service_utils import chain_graph

from repro import obs
from repro.store.catalog import (LRUCache, ProvenanceService, RunCatalog,
                                 _env_cache_budget_bytes)
from repro.store.doctor import DoctorReport, diagnose
from repro.store.memory import MemoryStore


class Sized:
    """A value with a declared in-memory footprint."""

    def __init__(self, size: int):
        self.size = size

    def memory_bytes(self) -> int:
        return self.size


class TestByteBudgetLRU:
    def test_unbudgeted_cache_never_evicts_by_bytes(self):
        cache = LRUCache(4, name="plain")
        for i in range(4):
            cache.get_or_build(i, lambda i=i: Sized(1 << 20))
        assert len(cache) == 4
        assert cache.total_bytes == 0  # sizing skipped entirely

    def test_budget_evicts_lru_first(self):
        cache = LRUCache(100, name="tight", budget_bytes=250)
        for i in range(3):
            cache.get_or_build(i, lambda: Sized(100))
        # 300 bytes > 250: the least-recently-used entry (0) is gone.
        assert len(cache) == 2
        assert cache.total_bytes == 200
        assert not cache.contains(0)
        assert cache.contains(1) and cache.contains(2)

    def test_recent_touch_survives_eviction(self):
        cache = LRUCache(100, name="touch", budget_bytes=250)
        cache.get_or_build("a", lambda: Sized(100))
        cache.get_or_build("b", lambda: Sized(100))
        cache.get_or_build("a", lambda: Sized(100))  # touch: a is MRU
        cache.get_or_build("c", lambda: Sized(100))
        assert not cache.contains("b")
        assert cache.contains("a") and cache.contains("c")

    def test_oversized_entry_keeps_at_least_one(self):
        cache = LRUCache(100, name="huge", budget_bytes=10)
        value = cache.get_or_build("big", lambda: Sized(10_000))
        assert cache.contains("big")  # never evict down to empty
        assert cache.get_or_build("big", lambda: Sized(1)) is value

    def test_info_reports_bytes_and_budget(self):
        cache = LRUCache(100, name="info", budget_bytes=1000)
        cache.get_or_build("x", lambda: Sized(123))
        info = cache.info()
        assert info["bytes"] == 123
        assert info["budget_bytes"] == 1000

    def test_bytes_gauge_published(self):
        telemetry = obs.enable()
        try:
            cache = LRUCache(100, name="gauged", budget_bytes=10_000)
            cache.get_or_build("x", lambda: Sized(512))
            gauge = telemetry.registry.gauge("cache.gauged.bytes")
            assert gauge.value == 512.0
        finally:
            obs.disable()

    def test_env_knob_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BUDGET_MB", raising=False)
        assert _env_cache_budget_bytes() is None
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "64")
        assert _env_cache_budget_bytes() == 64 * 1024 * 1024
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "not-a-number")
        assert _env_cache_budget_bytes() is None
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "0")
        assert _env_cache_budget_bytes() is None

    def test_service_splits_budget_and_bounds_graph_cache(self):
        store = MemoryStore()
        catalog = RunCatalog(store)
        run_ids = [catalog.register(chain_graph(500)).run_id
                   for _ in range(4)]
        one_graph = chain_graph(500).memory_bytes()
        # Budget ~1.5 graphs in the graph cache half: caching all four
        # runs must evict down to the budget instead of keeping 4.
        service = ProvenanceService(store, graph_cache_size=16,
                                    cache_budget_bytes=one_graph * 3)
        for run_id in run_ids:
            service.graph(run_id)
        assert 1 <= len(service._graphs) <= 2
        assert service._graphs.total_bytes <= one_graph * 3 // 2
        # The newest run survived; queries still work either way.
        assert service.stats(run_ids[-1]).node_count == 500

    def test_graph_memory_bytes_grows_with_graph(self):
        small = chain_graph(100).memory_bytes()
        large = chain_graph(2000).memory_bytes()
        assert small > 0
        assert large > small * 5


class TestDoctorDiagnoses:
    def test_healthy_store_has_no_diagnoses(self):
        store = MemoryStore()
        RunCatalog(store).register(chain_graph(50))
        report = diagnose(store)
        assert report.healthy
        assert report.diagnoses() == []
        assert report.to_dict()["diagnoses"] == []

    def test_records_are_flat_and_uniform(self):
        report = DoctorReport(shards=[
            {"shard": 0, "available": True, "integrity": [],
             "path": "a"},
            {"shard": 1, "available": False, "integrity": [],
             "path": "dead"},
        ])
        report.partial_runs.append({"run_id": "run-7", "state": "ingest"})
        report.checksum_failures.append({"run_id": "run-8",
                                         "expected": "x", "actual": "y"})
        report.quarantined.append({"run_id": "run-9", "error": "bad"})
        report.repaired.append({"run_id": "run-7",
                                "action": "rolled back"})
        records = report.diagnoses()
        assert [set(record) for record in records] == [
            {"severity", "kind", "run_id", "shard", "detail"}] * 5
        by_kind = {record["kind"]: record for record in records}
        assert by_kind["shard-unavailable"]["severity"] == "error"
        assert by_kind["shard-unavailable"]["shard"] == 1
        assert by_kind["partial-ingest"]["run_id"] == "run-7"
        assert by_kind["checksum-mismatch"]["severity"] == "error"
        assert by_kind["quarantined"]["severity"] == "info"
        assert by_kind["repaired"]["severity"] == "info"
        # info records never count as problems
        errors = [r for r in records if r["severity"] == "error"]
        assert len(errors) == report.problems
        json.dumps(records)  # JSON-able end to end
