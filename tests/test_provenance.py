"""Unit tests for tokens, polynomials, semirings, and expressions."""

import pytest

from repro.errors import LipstickError
from repro.provenance import (
    BOOLEAN,
    COUNTING,
    MONOIDS,
    ONE,
    SECURITY,
    TROPICAL,
    WHY,
    ZERO,
    AggExpr,
    AggregateValue,
    BlackBoxExpr,
    DeltaExpr,
    Polynomial,
    Token,
    TokenFactory,
    TokenExpr,
    constant_valuation,
    delta,
    evaluate_aggregate,
    product_of,
    sum_of,
    tensor,
    token,
)


@pytest.fixture
def tokens():
    factory = TokenFactory()
    return factory.fresh("R"), factory.fresh("R"), factory.fresh("S")


class TestTokens:
    def test_fresh_tokens_are_unique(self):
        factory = TokenFactory()
        assert factory.fresh() != factory.fresh()
        assert factory.minted_count() == 2

    def test_named_tokens_interned(self):
        factory = TokenFactory()
        assert factory.named("C2") is factory.named("C2")
        assert factory.named("C2", "Cars") is not factory.named("C2")

    def test_qualified_name(self):
        assert Token("t0", "Cars").qualified_name == "Cars.t0"
        assert Token("t0").qualified_name == "t0"

    def test_ordering(self):
        assert Token("a", "A") < Token("b", "A")
        assert Token("z", "A") < Token("a", "B")


class TestPolynomial:
    def test_zero_one(self):
        assert Polynomial.zero().is_zero()
        assert Polynomial.one().is_one()
        assert (Polynomial.zero() + Polynomial.one()).is_one()

    def test_addition_merges_terms(self, tokens):
        a, _b, _c = tokens
        doubled = Polynomial.of_token(a) + Polynomial.of_token(a)
        assert doubled == Polynomial.constant(2) * Polynomial.of_token(a)

    def test_multiplication_builds_monomials(self, tokens):
        a, b, _c = tokens
        product = Polynomial.of_token(a) * Polynomial.of_token(b)
        assert product.degree() == 2
        assert product.tokens() == {a, b}

    def test_squaring(self, tokens):
        a, _b, _c = tokens
        squared = Polynomial.of_token(a) * Polynomial.of_token(a)
        assert squared.degree() == 2
        assert squared.term_count() == 1

    def test_negative_constant_rejected(self):
        with pytest.raises(LipstickError):
            Polynomial.constant(-1)

    def test_evaluate_counting(self, tokens):
        a, b, _c = tokens
        # 2a·b + a  at a=2, b=3  →  2·2·3 + 2 = 14
        polynomial = (Polynomial.constant(2) * Polynomial.of_token(a)
                      * Polynomial.of_token(b)) + Polynomial.of_token(a)
        values = {a: 2, b: 3}
        assert polynomial.evaluate(COUNTING, values.__getitem__) == 14

    def test_evaluate_boolean_deletion(self, tokens):
        a, b, _c = tokens
        polynomial = (Polynomial.of_token(a) * Polynomial.of_token(b)
                      + Polynomial.of_token(a))
        alive = {a: True, b: False}
        assert polynomial.evaluate(BOOLEAN, alive.__getitem__) is True
        dead = {a: False, b: True}
        assert polynomial.evaluate(BOOLEAN, dead.__getitem__) is False

    def test_specialize(self, tokens):
        a, b, _c = tokens
        polynomial = Polynomial.of_token(a) * Polynomial.of_token(b)
        specialized = polynomial.specialize({a: Polynomial.constant(3)})
        assert specialized == Polynomial.constant(3) * Polynomial.of_token(b)

    def test_delete_tokens(self, tokens):
        a, b, _c = tokens
        polynomial = (Polynomial.of_token(a) * Polynomial.of_token(b)
                      + Polynomial.of_token(b))
        assert polynomial.delete_tokens([a]) == Polynomial.of_token(b)
        assert polynomial.delete_tokens([b]).is_zero()

    def test_str_sorted_and_readable(self, tokens):
        a, b, _c = tokens
        polynomial = Polynomial.of_token(b) * Polynomial.of_token(a) \
            + Polynomial.of_token(a)
        rendered = str(polynomial)
        assert "R.t0" in rendered and "+" in rendered

    def test_str_zero(self):
        assert str(Polynomial.zero()) == "0"


class TestSemirings:
    def test_counting_delta(self):
        assert COUNTING.delta(5) == 1
        assert COUNTING.delta(0) == 0

    def test_boolean(self):
        assert BOOLEAN.plus(False, True) is True
        assert BOOLEAN.times(True, False) is False

    def test_tropical(self):
        assert TROPICAL.plus(3.0, 5.0) == 3.0
        assert TROPICAL.times(3.0, 5.0) == 8.0
        assert TROPICAL.zero == float("inf")

    def test_security_levels(self):
        assert SECURITY.plus(SECURITY.SECRET, SECURITY.PUBLIC) == SECURITY.PUBLIC
        assert SECURITY.times(SECURITY.SECRET, SECURITY.PUBLIC) == SECURITY.SECRET

    def test_why_provenance(self):
        a, b = Token("a"), Token("b")
        witnesses = WHY.times(WHY.lift(a), WHY.lift(b))
        assert witnesses == frozenset({frozenset({a, b})})
        either = WHY.plus(WHY.lift(a), WHY.lift(b))
        assert len(either) == 2

    def test_sum_product_helpers(self):
        assert COUNTING.sum([1, 2, 3]) == 6
        assert COUNTING.product([2, 3]) == 6

    def test_constant_valuation(self):
        valuation = constant_valuation(COUNTING)
        assert valuation(Token("x")) == 1


class TestProvExpressions:
    def test_smart_sum_absorbs_zero(self, tokens):
        a, _b, _c = tokens
        assert sum_of([ZERO, token(a)]) == TokenExpr(a)
        assert sum_of([]) is ZERO

    def test_smart_product_absorbs(self, tokens):
        a, _b, _c = tokens
        assert product_of([ONE, token(a)]) == TokenExpr(a)
        assert product_of([ZERO, token(a)]) is ZERO
        assert product_of([]) is ONE

    def test_flattening(self, tokens):
        a, b, c = tokens
        nested = sum_of([token(a), sum_of([token(b), token(c)])])
        assert len(nested.operands) == 3

    def test_delta_idempotent(self, tokens):
        a, _b, _c = tokens
        assert delta(delta(token(a))) == delta(token(a))
        assert delta(ZERO) is ZERO

    def test_evaluate_matches_polynomial(self, tokens):
        a, b, _c = tokens
        expression = sum_of([product_of([token(a), token(b)]), token(a)])
        values = {a: 2, b: 3}
        assert (expression.evaluate(COUNTING, values.__getitem__)
                == expression.to_polynomial().evaluate(COUNTING, values.__getitem__))

    def test_delta_not_polynomial(self, tokens):
        a, _b, _c = tokens
        with pytest.raises(LipstickError):
            delta(token(a)).to_polynomial()

    def test_delete_tokens_product_dies(self, tokens):
        a, b, _c = tokens
        expression = product_of([token(a), token(b)])
        assert expression.delete_tokens({a}).is_zero()

    def test_delete_tokens_sum_survives(self, tokens):
        a, b, _c = tokens
        expression = sum_of([token(a), token(b)])
        assert expression.delete_tokens({a}) == TokenExpr(b)

    def test_tensor_deletion(self, tokens):
        a, _b, _c = tokens
        paired = tensor(token(a), 42)
        assert paired.delete_tokens({a}).is_zero()

    def test_blackbox_evaluates_as_product(self, tokens):
        a, b, _c = tokens
        expression = BlackBoxExpr("CalcBid", [token(a), token(b)])
        values = {a: 2, b: 3}
        assert expression.evaluate(COUNTING, values.__getitem__) == 6

    def test_tokens_collects_leaves(self, tokens):
        a, b, c = tokens
        expression = sum_of([product_of([token(a), token(b)]),
                             delta(token(c))])
        assert expression.tokens() == {a, b, c}

    def test_str_rendering(self, tokens):
        a, b, _c = tokens
        rendered = str(sum_of([product_of([token(a), token(b)]), token(a)]))
        assert "·" in rendered and "+" in rendered


class TestAggregation:
    def test_count_collapse(self, tokens):
        a, b, _c = tokens
        value = AggregateValue("COUNT", [(token(a), 1), (token(b), 1)])
        assert value.collapse() == 2

    def test_sum_respects_multiplicity(self, tokens):
        a, _b, _c = tokens
        value = AggregateValue("SUM", [(token(a), 10)])
        assert value.collapse(lambda _t: 3) == 30

    def test_min_ignores_multiplicity(self, tokens):
        a, b, _c = tokens
        value = AggregateValue("MIN", [(token(a), 10), (token(b), 7)])
        assert value.collapse(lambda _t: 5) == 7

    def test_deletion_recomputes(self, tokens):
        # Example 4.3: after deleting C2, COUNT re-computes over C3 only.
        a, b, _c = tokens
        count = AggregateValue("COUNT", [(token(a), 1), (token(b), 1)])
        assert count.delete_tokens({a}).collapse() == 1

    def test_empty_aggregates(self):
        assert AggregateValue("COUNT", []).collapse() == 0
        assert AggregateValue("MIN", []).collapse() is None

    def test_unknown_operator(self):
        with pytest.raises(LipstickError):
            AggregateValue("MEDIAN", [])

    def test_to_expression(self, tokens):
        a, _b, _c = tokens
        expression = AggregateValue("SUM", [(token(a), 5)]).to_expression()
        assert isinstance(expression, AggExpr)
        assert expression.op == "SUM"

    def test_evaluate_aggregate_helper(self, tokens):
        a, b, _c = tokens
        assert evaluate_aggregate("MAX", [(token(a), 3), (token(b), 9)]) == 9

    def test_monoid_table(self):
        assert set(MONOIDS) == {"SUM", "COUNT", "MIN", "MAX"}
