"""Concurrency stress tests: parallel ingest racing concurrent readers.

The headline scenario from the issue: 16 runs ingested across 4
worker threads into a SQLite-backed sharded store while a reader
thread hammers the service with zoom / subgraph / reachability
queries.  Afterwards nothing may be corrupted: the catalog holds
exactly 16 stable runs, every stored graph passes
``check_consistency``, and per-run JSONL dumps are byte-identical to
a serial ingest of the same graphs.

Thread workers (not processes) are used deliberately — they share the
store object, so these tests exercise the WAL/per-thread-connection
plumbing, the locked LRU caches, and the run-id reservation logic.
The process-pool pipeline has its own coverage in
``benchmarks/test_parallel_ingest.py``.
"""

from __future__ import annotations

import io
import threading

import pytest

from repro.benchmark.workflowgen import run_dealerships
from repro.errors import FrozenGraphError
from repro.graph.serialize import dump_graph
from repro.queries.zoom import Zoomer
from repro.store import (MemoryStore, ProvenanceService, RunCatalog,
                         ShardedStore, SQLiteStore)

RUN_COUNT = 16
WORKERS = 4


@pytest.fixture(scope="module")
def template_graphs():
    """Four small, distinct tracked dealership graphs (seeds 0-3)."""
    return [run_dealerships(num_cars=12, num_exec=2, seed=seed, track=True,
                            force_decline=True).graph
            for seed in range(4)]


def _run_id(index: int) -> str:
    return f"run-{index + 1:04d}"


def _dump_bytes(store, run_id: str) -> str:
    stream = io.StringIO()
    dump_graph(store.load_graph(run_id), stream)
    return stream.getvalue()


def _serial_dumps(template_graphs):
    store = MemoryStore()
    for index in range(RUN_COUNT):
        store.put_graph(_run_id(index), template_graphs[index % 4])
    return {_run_id(index): _dump_bytes(store, _run_id(index))
            for index in range(RUN_COUNT)}


class TestIngestUnderConcurrentReads:
    def test_sharded_ingest_with_reader_thread(self, tmp_path,
                                               template_graphs):
        store = ShardedStore.open(tmp_path / "stress.db", WORKERS)
        service = ProvenanceService(store)
        errors = []
        done = threading.Event()

        def writer(worker: int) -> None:
            try:
                for position in range(RUN_COUNT // WORKERS):
                    index = worker * (RUN_COUNT // WORKERS) + position
                    graph = template_graphs[index % 4].copy()
                    store.put_graph(_run_id(index), graph,
                                    source=f"worker:{worker}")
            except BaseException as error:  # pragma: no cover - fail assert
                errors.append(error)

        def reader() -> None:
            try:
                while not done.is_set():
                    runs = service.runs()
                    for info in runs[:4]:
                        # CSR read path (immutable snapshot) ...
                        result = service.subgraph(info.run_id, 0)
                        assert result.size >= 0
                        assert service.reachable(info.run_id, 0, 0)
                        # ... and zoom on a frozen copy-on-read graph.
                        frozen = service.snapshot(info.run_id)
                        zoomer = Zoomer(frozen.copy())
                        zoomed = zoomer.zoom_out_all()
                        assert zoomed
            except BaseException as error:  # pragma: no cover - fail assert
                errors.append(error)

        reader_thread = threading.Thread(target=reader)
        writer_threads = [threading.Thread(target=writer, args=(worker,))
                          for worker in range(WORKERS)]
        reader_thread.start()
        for thread in writer_threads:
            thread.start()
        for thread in writer_threads:
            thread.join(timeout=120)
        done.set()
        reader_thread.join(timeout=120)
        assert not reader_thread.is_alive()
        assert errors == []

        # Catalog is complete and stable.
        runs = store.list_runs()
        assert len(runs) == RUN_COUNT
        assert {info.run_id for info in runs} == \
            {_run_id(index) for index in range(RUN_COUNT)}
        # Merged catalog order is stable: oldest first.
        created = [info.created_at for info in runs]
        assert created == sorted(created)

        # Catalog counters match the stored graphs, graphs are sane.
        for info in runs:
            graph = store.load_graph(info.run_id)
            assert (graph.node_count, graph.edge_count) == \
                (info.node_count, info.edge_count)
            graph.check_consistency(warn_duplicates=False)

        # Dumps are byte-identical to serial ingest of the same graphs.
        expected = _serial_dumps(template_graphs)
        for run_id, dump in expected.items():
            assert _dump_bytes(store, run_id) == dump
        store.close()

    def test_concurrent_commits_to_one_sqlite_file(self, tmp_path,
                                                   template_graphs):
        """All workers hitting a single unsharded SQLite database must
        serialize cleanly through the write lock (no 'database is
        locked', no lost runs)."""
        store = SQLiteStore(tmp_path / "single.db")
        errors = []

        def writer(worker: int) -> None:
            try:
                for position in range(4):
                    index = worker * 4 + position
                    store.put_graph(_run_id(index),
                                    template_graphs[index % 4])
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(worker,))
                   for worker in range(WORKERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []
        assert len(store.list_runs()) == RUN_COUNT
        store.close()


class TestNamingAndSnapshots:
    def test_run_id_reservation_is_race_free(self, template_graphs):
        """Concurrent new_run_id callers never get the same name."""
        catalog = RunCatalog(MemoryStore())
        names = []
        names_lock = threading.Lock()

        def claim() -> None:
            for _ in range(25):
                run_id = catalog.new_run_id()
                with names_lock:
                    names.append(run_id)

        threads = [threading.Thread(target=claim) for _ in range(WORKERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(names) == WORKERS * 25
        assert len(set(names)) == len(names)

    def test_snapshot_is_frozen_and_shared(self, template_graphs):
        store = MemoryStore()
        store.put_graph("demo", template_graphs[0])
        service = ProvenanceService(store)
        frozen = service.snapshot("demo")
        assert frozen.frozen
        with pytest.raises(FrozenGraphError):
            frozen.remove_node(next(iter(frozen.node_ids())))
        # Same version → same cached frozen copy; copies are thawed.
        assert service.snapshot("demo") is frozen
        thawed = frozen.copy()
        assert not thawed.frozen
        thawed.remove_node(next(iter(thawed.node_ids())))

    def test_frozen_graph_blocks_all_structural_mutation(self,
                                                         template_graphs):
        from repro.graph.nodes import NodeKind
        frozen = template_graphs[0].snapshot()
        node_ids = list(frozen.node_ids())
        with pytest.raises(FrozenGraphError):
            frozen.add_node(NodeKind.TUPLE)
        with pytest.raises(FrozenGraphError):
            frozen.add_nodes(NodeKind.TUPLE, count=3)
        with pytest.raises(FrozenGraphError):
            frozen.add_edge(node_ids[0], node_ids[1])
        with pytest.raises(FrozenGraphError):
            frozen.add_edges([(node_ids[0], node_ids[1])])
        with pytest.raises(FrozenGraphError):
            frozen.remove_nodes(node_ids[:2])
        with pytest.raises(FrozenGraphError):
            frozen.new_invocation("M")
        # Facade write-through setters are guarded too.
        with pytest.raises(FrozenGraphError):
            frozen.node(node_ids[0]).label = "sneaky"
        with pytest.raises(FrozenGraphError):
            frozen.node(node_ids[0]).value = 42
        # Reads still work and agree with the source graph.
        assert frozen.node_count == template_graphs[0].node_count
        assert frozen.ancestors(node_ids[-1]) == \
            template_graphs[0].ancestors(node_ids[-1])

    def test_freeze_materializes_adjacency_views(self, template_graphs):
        """Lazy view building is a multi-step mutation; freeze() must
        do it eagerly so concurrent first reads cannot race."""
        frozen = template_graphs[0].snapshot()
        assert frozen._pred_views is not None
        assert frozen._indexed_upto == len(frozen._edge_src)

    def test_closed_sqlite_store_refuses_use(self, tmp_path,
                                             template_graphs):
        from repro.errors import StoreError
        store = SQLiteStore(tmp_path / "closing.db")
        store.put_graph("r1", template_graphs[0])
        store.close()
        with pytest.raises(StoreError, match="closed"):
            store.list_runs()
        with pytest.raises(StoreError, match="closed"):
            store.put_graph("r2", template_graphs[1])
