"""Property-based tests (hypothesis) on the core algebra and graph.

Covers: semiring laws of N[X], homomorphism of evaluation, consistency
of graph deletion propagation with algebraic token deletion, zoom
round-trips, interpreter bag-semantics invariants.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.datamodel import FieldType, Relation, Schema
from repro.graph import GraphBuilder, NodeKind, to_expression
from repro.piglatin import Interpreter
from repro.provenance import (
    BOOLEAN,
    COUNTING,
    Polynomial,
    Token,
    TROPICAL,
    delta,
    product_of,
    sum_of,
    token,
)
from repro.queries import Zoomer, propagate_deletion

TOKENS = [Token(f"t{i}") for i in range(4)]

# ----------------------------------------------------------------------
# Polynomial strategies
# ----------------------------------------------------------------------
polynomials = st.deferred(lambda: st.one_of(
    st.sampled_from([Polynomial.zero(), Polynomial.one()]),
    st.sampled_from(TOKENS).map(Polynomial.of_token),
    st.integers(min_value=0, max_value=3).map(Polynomial.constant),
    st.tuples(polynomials, polynomials).map(lambda pair: pair[0] + pair[1]),
    st.tuples(polynomials, polynomials).map(lambda pair: pair[0] * pair[1]),
))

valuations = st.fixed_dictionaries(
    {tok: st.integers(min_value=0, max_value=3) for tok in TOKENS})


class TestSemiringLaws:
    @given(polynomials, polynomials)
    def test_addition_commutative(self, p, q):
        assert p + q == q + p

    @given(polynomials, polynomials, polynomials)
    def test_addition_associative(self, p, q, r):
        assert (p + q) + r == p + (q + r)

    @given(polynomials, polynomials)
    def test_multiplication_commutative(self, p, q):
        assert p * q == q * p

    @given(polynomials, polynomials, polynomials)
    def test_multiplication_associative(self, p, q, r):
        assert (p * q) * r == p * (q * r)

    @given(polynomials, polynomials, polynomials)
    def test_distributivity(self, p, q, r):
        assert p * (q + r) == p * q + p * r

    @given(polynomials)
    def test_identities(self, p):
        assert p + Polynomial.zero() == p
        assert p * Polynomial.one() == p
        assert (p * Polynomial.zero()).is_zero()

    @given(polynomials, polynomials, valuations)
    def test_evaluation_is_homomorphism(self, p, q, values):
        valuation = values.__getitem__
        assert ((p + q).evaluate(COUNTING, valuation)
                == p.evaluate(COUNTING, valuation)
                + q.evaluate(COUNTING, valuation))
        assert ((p * q).evaluate(COUNTING, valuation)
                == p.evaluate(COUNTING, valuation)
                * q.evaluate(COUNTING, valuation))

    @given(polynomials, valuations)
    def test_boolean_evaluation_matches_counting_positivity(self, p, values):
        counting = p.evaluate(COUNTING, values.__getitem__)
        boolean = p.evaluate(BOOLEAN, lambda t: values[t] > 0)
        assert boolean == (counting > 0)

    @given(polynomials, st.sets(st.sampled_from(TOKENS)))
    def test_delete_tokens_equals_zero_valuation(self, p, dead):
        survivors = p.delete_tokens(dead)
        valuation = lambda t: 0 if t in dead else 1
        assert (survivors.evaluate(COUNTING, lambda _t: 1)
                == p.evaluate(COUNTING, valuation))


# ----------------------------------------------------------------------
# Expression strategies (with δ)
# ----------------------------------------------------------------------
expressions = st.deferred(lambda: st.one_of(
    st.sampled_from(TOKENS).map(token),
    st.lists(expressions, min_size=2, max_size=3).map(sum_of),
    st.lists(expressions, min_size=2, max_size=3).map(product_of),
    expressions.map(delta),
))


class TestExpressionProperties:
    @given(expressions, st.sets(st.sampled_from(TOKENS)))
    def test_deletion_agrees_with_boolean_semantics(self, expression, dead):
        simplified = expression.delete_tokens(dead)
        alive = lambda t: t not in dead
        expected = expression.evaluate(BOOLEAN, alive)
        actual = (not simplified.is_zero()
                  and simplified.evaluate(BOOLEAN, lambda _t: True))
        assert actual == expected

    @given(expressions)
    def test_tropical_evaluation_defined(self, expression):
        # δ is identity in tropical; evaluation must never fail.
        cost = expression.evaluate(TROPICAL, lambda _t: 1.0)
        assert cost >= 0.0


# ----------------------------------------------------------------------
# Graph properties
# ----------------------------------------------------------------------
@st.composite
def small_dags(draw):
    """A random layered provenance-ish DAG inside one invocation."""
    builder = GraphBuilder()
    builder.begin_invocation("M")
    leaves = [builder.base_tuple_node("R")
              for _ in range(draw(st.integers(2, 5)))]
    layers = [leaves]
    for _depth in range(draw(st.integers(1, 3))):
        previous = layers[-1]
        width = draw(st.integers(1, 3))
        layer = []
        for _node in range(width):
            kind = draw(st.sampled_from(["plus", "times", "delta"]))
            count = draw(st.integers(1, min(3, len(previous))))
            indices = draw(st.permutations(range(len(previous))))
            operands = [previous[i] for i in indices[:count]]
            if kind == "plus":
                layer.append(builder.plus_node(operands))
            elif kind == "times":
                layer.append(builder.times_node(operands))
            else:
                layer.append(builder.delta_node(operands))
        layers.append(layer)
    builder.end_invocation()
    return builder.graph, leaves, layers[-1]


class TestGraphProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(small_dags(), st.data())
    def test_deletion_propagation_matches_algebra(self, dag, data):
        """Graph deletion (Def 4.2) and algebraic token deletion agree
        on the survival of every derived node."""
        graph, leaves, roots = dag
        dead_count = data.draw(st.integers(0, len(leaves)))
        dead_leaves = leaves[:dead_count]
        dead_labels = {graph.node(leaf).label for leaf in dead_leaves}
        outcome = propagate_deletion(graph, dead_leaves)
        for root in roots:
            expression = to_expression(graph, root)
            dead_tokens = {t for t in expression.tokens()
                           if t.name in dead_labels}
            algebra_survives = not expression.delete_tokens(dead_tokens).is_zero()
            assert outcome.survived(root) == algebra_survives

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(small_dags())
    def test_deletion_monotone_in_seeds(self, dag):
        graph, leaves, _roots = dag
        fewer = propagate_deletion(graph, leaves[:1]).removed
        more = propagate_deletion(graph, leaves[:2]).removed
        assert fewer <= more

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(small_dags())
    def test_graphs_acyclic_and_consistent(self, dag):
        graph, _leaves, _roots = dag
        assert graph.is_acyclic()
        graph.check_consistency()

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(small_dags())
    def test_copy_equals_original(self, dag):
        graph, _leaves, _roots = dag
        duplicate = graph.copy()
        assert set(duplicate.nodes) == set(graph.nodes)
        assert duplicate.edge_count == graph.edge_count
        for node_id in graph.node_ids():
            assert sorted(duplicate.preds(node_id)) == sorted(graph.preds(node_id))


# ----------------------------------------------------------------------
# Interpreter bag-semantics invariants
# ----------------------------------------------------------------------
ROWS = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.integers(min_value=0, max_value=5)),
    min_size=0, max_size=8)
SCHEMA = Schema.of(("k", FieldType.CHARARRAY), ("n", FieldType.INT))


def _relation(rows):
    return Relation.from_values(SCHEMA, rows)


class TestInterpreterProperties:
    @given(ROWS)
    def test_projection_preserves_cardinality(self, rows):
        result = Interpreter().execute("B = FOREACH R GENERATE k;",
                                       {"R": _relation(rows)})
        assert len(result.relation("B")) == len(rows)

    @given(ROWS)
    def test_filter_then_union_partition(self, rows):
        script = """
Lo = FILTER R BY n < 3;
Hi = FILTER R BY n >= 3;
Both = UNION Lo, Hi;
"""
        result = Interpreter().execute(script, {"R": _relation(rows)})
        assert result.relation("Both") == _relation(rows)

    @given(ROWS)
    def test_distinct_idempotent(self, rows):
        script = "D1 = DISTINCT R; D2 = DISTINCT D1;"
        result = Interpreter().execute(script, {"R": _relation(rows)})
        assert result.relation("D1") == result.relation("D2")

    @given(ROWS)
    def test_group_partitions_input(self, rows):
        result = Interpreter().execute("G = GROUP R BY k;",
                                       {"R": _relation(rows)})
        total = sum(len(row.values[1]) for row in result.relation("G").rows)
        assert total == len(rows)

    @given(ROWS)
    def test_group_count_matches_python(self, rows):
        script = """
G = GROUP R BY k;
C = FOREACH G GENERATE group, COUNT(R) AS n;
"""
        result = Interpreter().execute(script, {"R": _relation(rows)})
        counts = dict(result.relation("C").value_rows())
        expected = {}
        for key, _value in rows:
            expected[key] = expected.get(key, 0) + 1
        assert counts == expected

    @given(ROWS, ROWS)
    def test_join_cardinality(self, left_rows, right_rows):
        result = Interpreter().execute(
            "J = JOIN L BY k, R BY k;",
            {"L": _relation(left_rows), "R": _relation(right_rows)})
        expected = 0
        for lk, _lv in left_rows:
            for rk, _rv in right_rows:
                if lk == rk:
                    expected += 1
        assert len(result.relation("J")) == expected

    @given(ROWS)
    def test_order_is_permutation(self, rows):
        result = Interpreter().execute("O = ORDER R BY n;",
                                       {"R": _relation(rows)})
        assert result.relation("O") == _relation(rows)
        values = [row.values[1] for row in result.relation("O").rows]
        assert values == sorted(values)

    @given(ROWS)
    def test_sum_matches_python(self, rows):
        script = """
G = GROUP R ALL;
S = FOREACH G GENERATE SUM(R.n) AS total;
"""
        result = Interpreter().execute(script, {"R": _relation(rows)})
        if rows:
            assert result.relation("S").value_rows() == [
                (sum(n for _k, n in rows),)]
        else:
            assert len(result.relation("S")) == 0

    @given(ROWS)
    def test_tracked_and_untracked_agree_on_values(self, rows):
        script = """
G = GROUP R BY k;
C = FOREACH G GENERATE group, COUNT(R) AS n;
D = DISTINCT R;
"""
        untracked = Interpreter().execute(script, {"R": _relation(rows)})
        builder = GraphBuilder()
        builder.begin_invocation("M")
        tracked = Interpreter(builder).execute(script, {"R": _relation(rows)})
        builder.end_invocation()
        for alias in ("C", "D"):
            assert tracked.relation(alias) == untracked.relation(alias)


class TestSerializationProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None,
              max_examples=30)
    @given(small_dags())
    def test_round_trip_preserves_structure(self, dag):
        import io

        from repro.graph import dump_graph, load_graph

        graph, _leaves, _roots = dag
        buffer = io.StringIO()
        dump_graph(graph, buffer)
        buffer.seek(0)
        rebuilt = load_graph(buffer)
        assert set(rebuilt.nodes) == set(graph.nodes)
        assert rebuilt.edge_count == graph.edge_count
        for node_id in graph.node_ids():
            assert sorted(rebuilt.preds(node_id)) == sorted(graph.preds(node_id))
            assert rebuilt.node(node_id).kind is graph.node(node_id).kind
        rebuilt.check_consistency()

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None,
              max_examples=20)
    @given(small_dags(), st.data())
    def test_deletion_commutes_with_round_trip(self, dag, data):
        import io

        from repro.graph import dump_graph, load_graph
        from repro.queries import deletion_set

        graph, leaves, _roots = dag
        seed_count = data.draw(st.integers(1, len(leaves)))
        seeds = leaves[:seed_count]
        before = deletion_set(graph, seeds)
        buffer = io.StringIO()
        dump_graph(graph, buffer)
        buffer.seek(0)
        rebuilt = load_graph(buffer)
        assert deletion_set(rebuilt, seeds) == before


class TestZoomProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None,
              max_examples=20)
    @given(st.integers(0, 3))
    def test_zoom_roundtrip_on_random_arctic(self, station_pick):
        from repro.benchmark.arctic import ArcticRun, build_arctic_workflow
        from repro.workflow import WorkflowExecutor

        workflow, modules = build_arctic_workflow("parallel", 2)
        builder = GraphBuilder()
        executor = WorkflowExecutor(workflow, modules, builder)
        run = ArcticRun(workflow, modules, selectivity="year", num_exec=1,
                        history_years=1)
        run.run(executor)
        graph = builder.graph
        module_name = ["Msta1", "Msta2", "Mout", "Msta1"][station_pick]
        before = (set(graph.nodes), graph.edge_count)
        zoomer = Zoomer(graph)
        zoomer.zoom_out([module_name])
        zoomer.zoom_in([module_name])
        assert (set(graph.nodes), graph.edge_count) == before
        graph.check_consistency()
