"""Unit tests for query profiling: captures, plans, the slow-query
log, retry span annotation, stats gauges, and the benchmark history.

The service/CLI round-trips for ``repro explain`` live in
``test_explain.py``; this file covers the :mod:`repro.obs.profile`
machinery itself plus the PR's observability satellites: the
``retry.attempts``/``retry.slept_s`` span tags, the cache/shard
gauges behind ``repro stats --prom``, the shared benchmark report
schema, and ``repro.benchmark.runner.compare``.
"""

from __future__ import annotations

import json
import sqlite3
import sys

import pytest

from repro import obs
from repro.benchmark.runner import REGRESSION_METRICS, compare
from repro.faults.retry import RetryPolicy, retry_call
from repro.obs import profile
from repro.obs.profile import (PlanStep, ProfileCapture, QueryPlan,
                               SlowQueryLog)
from repro.store.catalog import ProvenanceService
from repro.store.memory import MemoryStore


@pytest.fixture(autouse=True)
def _isolated_profiling():
    """Tests never leak a capture, slowlog, or telemetry context."""
    obs.disable()
    profile.disable_slowlog()
    yield
    assert profile.active() is None
    obs.disable()
    profile.disable_slowlog()


def make_plan(seconds=0.25, kind="subgraph", steps=()):
    cap = ProfileCapture(kind, run_id="run-a", params={"node": 3})
    for name, tier, counters in steps:
        cap.step(name, tier=tier, **counters)
    return cap.finish(seconds)


class TestCapture:
    def test_capture_collects_steps_and_clears_itself(self):
        assert profile.active() is None
        with profile.capture("subgraph", run_id="run-a", node=7) as cap:
            assert profile.active() is cap
            cap.step("service.graph", tier="sqlite-cold", seconds=0.01,
                     nodes=10, edges=12)
            cap.step("kernel.subgraph", seconds=0.002, nodes_visited=5,
                     edges_scanned=9, mask_bytes=10)
        assert profile.active() is None
        plan = cap.plan
        assert isinstance(plan, QueryPlan)
        assert plan.kind == "subgraph" and plan.run_id == "run-a"
        assert plan.params == {"node": 7}
        assert [step.name for step in plan.steps] == \
            ["service.graph", "kernel.subgraph"]
        assert plan.seconds > 0

    def test_tiers_first_seen_order_and_dedup(self):
        plan = make_plan(steps=[
            ("a", "sqlite-cold", {}), ("b", "csr-view", {}),
            ("c", None, {}), ("d", "sqlite-cold", {})])
        assert plan.tiers() == ["sqlite-cold", "csr-view"]
        for tier in plan.tiers():
            assert tier in profile.TIERS

    def test_counters_total_sums_numbers_skips_bools(self):
        plan = make_plan(steps=[
            ("a", None, {"nodes_visited": 3, "found": True}),
            ("b", None, {"nodes_visited": 4, "edges_scanned": 7})])
        assert plan.counters_total() == {"nodes_visited": 7,
                                         "edges_scanned": 7}

    def test_to_dict_round_trips_through_json(self):
        plan = make_plan(steps=[("a", "csr-view", {"nodes_visited": 3})])
        plan.summary["size"] = 9
        payload = json.loads(json.dumps(plan.to_dict()))
        assert payload["kind"] == "subgraph"
        assert payload["tiers"] == ["csr-view"]
        assert payload["summary"] == {"size": 9}
        (step,) = payload["steps"]
        assert step["counters"] == {"nodes_visited": 3}

    def test_render_mentions_every_step_and_tier(self):
        plan = make_plan(steps=[("service.graph", "service-lru",
                                 {"nodes": 5})])
        text = plan.render()
        assert "service.graph" in text and "service-lru" in text
        assert "subgraph" in text and "nodes=5" in text

    def test_capture_exception_still_cleans_up(self):
        with pytest.raises(RuntimeError):
            with profile.capture("subgraph", run_id="run-a"):
                raise RuntimeError("boom")
        assert profile.active() is None

    def test_nested_threads_profile_independently(self):
        import threading
        seen = {}

        def other_thread():
            # The outer thread's capture is contextvar-scoped and must
            # not leak into this thread.
            seen["other"] = profile.active()

        with profile.capture("subgraph", run_id="run-a") as cap:
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
            assert profile.active() is cap
        assert seen["other"] is None


class TestSlowQueryLog:
    def test_threshold_gates_recording(self):
        log = SlowQueryLog(threshold_ms=100.0)
        assert not log.maybe_record(make_plan(seconds=0.05))
        assert log.maybe_record(make_plan(seconds=0.25))
        (entry,) = log.entries()
        assert entry["kind"] == "subgraph"
        assert entry["threshold_ms"] == 100.0
        assert log.recorded() == 1

    def test_ring_drops_oldest_but_counts_all(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=3)
        for index in range(5):
            plan = make_plan(seconds=0.001 * (index + 1))
            log.maybe_record(plan)
        assert len(log) == 3 and log.recorded() == 5

    def test_jsonl_mirror_and_read_back(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(threshold_ms=0.0, path=path)
        log.maybe_record(make_plan(seconds=0.2))
        log.maybe_record(make_plan(seconds=0.3, kind="reachability"))
        entries = profile.read_slowlog(path)
        assert [entry["kind"] for entry in entries] == \
            ["subgraph", "reachability"]

    def test_export_jsonl(self, tmp_path):
        log = SlowQueryLog(threshold_ms=0.0)
        log.maybe_record(make_plan(seconds=0.2))
        out = tmp_path / "export.jsonl"
        assert log.export_jsonl(out) == 1
        assert profile.read_slowlog(out)[0]["kind"] == "subgraph"

    def test_enable_disable_and_snapshot(self):
        assert profile.slowlog() is None
        log = profile.enable_slowlog(threshold_ms=5.0, capacity=7,
                                     reset=True)
        assert profile.slowlog() is log
        assert profile.enable_slowlog(threshold_ms=999.0) is log  # idempotent
        snap = log.snapshot()
        assert snap["threshold_ms"] == 5.0 and snap["capacity"] == 7
        profile.disable_slowlog()
        assert profile.slowlog() is None

    def test_env_threshold_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOWLOG_MS", "12.5")
        assert profile._env_threshold_ms() == 12.5
        monkeypatch.setenv("REPRO_SLOWLOG_MS", "junk")
        assert profile._env_threshold_ms(default=3.0) == 3.0
        monkeypatch.delenv("REPRO_SLOWLOG_MS")
        assert profile._env_threshold_ms(default=0.0) == 0.0


class TestQueryScope:
    def test_fast_path_is_shared_null_scope(self):
        scope = profile.query_scope("subgraph", run_id="run-a", node=1)
        assert scope is profile.query_scope("zoom")
        with scope as cap:
            assert cap is None

    def test_slowlog_records_service_query_without_explain(self):
        log = profile.enable_slowlog(threshold_ms=0.0, reset=True)
        with profile.query_scope("subgraph", run_id="run-a", node=1) as cap:
            assert profile.active() is cap
            cap.step("kernel.subgraph", nodes_visited=4)
        (entry,) = log.entries()
        assert entry["kind"] == "subgraph"
        assert entry["steps"][0]["counters"] == {"nodes_visited": 4}

    def test_nested_scope_is_noop_under_outer_capture(self):
        """An EXPLAIN must produce exactly one slowlog entry — the
        outer capture's — not a second, slimmer one from the service
        seam it wraps."""
        log = profile.enable_slowlog(threshold_ms=0.0, reset=True)
        with profile.capture("subgraph", run_id="run-a") as cap:
            with profile.query_scope("subgraph", run_id="run-a") as inner:
                assert inner is None
                assert profile.active() is cap
        assert log.recorded() == 1

    def test_scope_skips_failed_queries(self):
        log = profile.enable_slowlog(threshold_ms=0.0, reset=True)
        with pytest.raises(KeyError):
            with profile.query_scope("subgraph", run_id="run-a"):
                raise KeyError("no such run")
        assert log.recorded() == 0


class TestServiceProfiling:
    """The catalog seams: tier attribution without a store round-trip."""

    @pytest.fixture
    def service(self, dealership_execution):
        store = MemoryStore()
        store.put_graph("run-a", dealership_execution[0])
        return ProvenanceService(store)

    def test_cold_then_warm_graph_tier(self, service):
        with profile.capture("subgraph", run_id="run-a") as cold:
            service.graph("run-a")
        with profile.capture("subgraph", run_id="run-a") as warm:
            service.graph("run-a")
        assert cold.plan.steps[0].tier == "sqlite-cold"
        assert warm.plan.steps[0].tier == "service-lru"
        counters = cold.plan.steps[0].counters
        assert counters["nodes"] > 0 and counters["edges"] > 0

    def test_snapshot_and_index_tiers(self, service):
        with profile.capture("subgraph", run_id="run-a") as cap:
            service.snapshot("run-a")
            service.reachability_index("run-a")
        tiers = cap.plan.tiers()
        assert "frozen-snapshot" in tiers and "bitset-index" in tiers

    def test_uninstrumented_path_untouched(self, service):
        """No capture, no slowlog: queries take the plain path."""
        node = next(iter(service.graph("run-a").nodes))
        assert service.subgraph("run-a", node).size > 0
        assert profile.active() is None


class TestRetrySpanTags:
    """Satellite: the backoff loop annotates the enclosing span."""

    def _locked_then_ok(self, failures):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) <= failures:
                raise sqlite3.OperationalError("database is locked")
            return "ok"
        return flaky

    def test_success_after_retries_tags_span(self):
        telemetry = obs.enable(reset=True)
        policy = RetryPolicy(attempts=5, base_seconds=0.01, seed=0)
        with obs.span("store.write"):
            result = retry_call(self._locked_then_ok(2), policy,
                                operation="test", sleep=lambda _s: None)
        assert result == "ok"
        (event,) = telemetry.events.events()
        assert event["tags"]["retry.attempts"] == 3  # 2 failures + success
        assert event["tags"]["retry.slept_s"] > 0

    def test_give_up_tags_failed_attempts(self):
        telemetry = obs.enable(reset=True)
        policy = RetryPolicy(attempts=3, base_seconds=0.01, seed=0)
        with pytest.raises(sqlite3.OperationalError):
            with obs.span("store.write"):
                retry_call(self._locked_then_ok(99), policy,
                           operation="test", sleep=lambda _s: None)
        (event,) = telemetry.events.events()
        assert event["tags"]["retry.attempts"] == 3  # all attempts failed

    def test_zero_retry_path_stays_tag_free(self):
        telemetry = obs.enable(reset=True)
        with obs.span("store.write"):
            retry_call(lambda: "ok", RetryPolicy(attempts=3),
                       operation="test", sleep=lambda _s: None)
        (event,) = telemetry.events.events()
        assert "retry.attempts" not in event["tags"]

    def test_sequential_retries_accumulate_on_one_span(self):
        telemetry = obs.enable(reset=True)
        policy = RetryPolicy(attempts=5, base_seconds=0.01, seed=0)
        with obs.span("store.write"):
            retry_call(self._locked_then_ok(1), policy,
                       operation="test", sleep=lambda _s: None)
            retry_call(self._locked_then_ok(1), policy,
                       operation="test", sleep=lambda _s: None)
        (event,) = telemetry.events.events()
        assert event["tags"]["retry.attempts"] == 4

    def test_no_span_no_telemetry_is_harmless(self):
        policy = RetryPolicy(attempts=5, base_seconds=0.01, seed=0)
        assert retry_call(self._locked_then_ok(1), policy,
                          operation="test", sleep=lambda _s: None) == "ok"


class TestCacheGauges:
    """Satellite: ``repro stats --prom`` exposes cache and shard sizes."""

    def test_record_cache_gauges(self, dealership_execution):
        store = MemoryStore()
        store.put_graph("run-a", dealership_execution[0])
        service = ProvenanceService(store)
        service.graph("run-a")
        service.csr("run-a")
        telemetry = obs.enable(reset=True)
        service.record_cache_gauges()
        registry = telemetry.registry
        assert registry.gauge("cache.graphs.size").value == 1
        assert registry.gauge("cache.csr.size").value == 1
        assert registry.gauge("cache.graphs.capacity").value > 0

    def test_noop_when_disabled(self, dealership_execution):
        store = MemoryStore()
        store.put_graph("run-a", dealership_execution[0])
        service = ProvenanceService(store)
        service.graph("run-a")
        service.record_cache_gauges()  # must not raise, must not enable
        assert not obs.enabled()

    def test_stats_prom_exposes_cache_and_shards(self, tmp_path, capsys):
        from repro.cli import main
        db = str(tmp_path / "g.db")
        assert main(["ingest", "--db", db, "--runs", "2", "--shards", "2",
                     "--cars", "15", "--executions", "2"]) == 0
        capsys.readouterr()
        assert main(["stats", "--db", db, "--prom"]) == 0
        out = capsys.readouterr().out
        assert "cache_graphs_size" in out
        assert "store_shard_runs" in out
        assert 'shard="0"' in out and 'shard="1"' in out


class TestReportSchema:
    """Satellite: BENCH_PR2/PR6 meta and the history file share one
    schema module."""

    @pytest.fixture(autouse=True)
    def _bench_dir_on_path(self):
        sys.path.insert(0, "benchmarks")
        yield
        sys.path.remove("benchmarks")

    def test_report_meta_fields(self):
        import report_schema
        meta = report_schema.report_meta(
            "BENCH_X", "desc", repeats=3, smoke=True,
            scales={"cars": 40}, graph_nodes=10)
        assert meta["report"] == "BENCH_X"
        assert meta["schema"] == report_schema.SCHEMA_VERSION
        assert meta["repeats"] == 3 and meta["smoke"] is True
        assert meta["scales"] == {"cars": 40}
        assert meta["graph_nodes"] == 10  # extras pass through
        assert meta["python"] and meta["platform"]

    def test_history_round_trip(self, tmp_path):
        import report_schema
        path = tmp_path / "hist.jsonl"
        entry = report_schema.history_entry(
            {"fig6_replay_speedup": 4.2}, scales={"cars": 40},
            repeats=3, smoke=True, seed=11)
        report_schema.append_history(path, entry)
        report_schema.append_history(path, entry)
        back = report_schema.read_history(path)
        assert len(back) == 2
        assert back[0]["metrics"] == {"fig6_replay_speedup": 4.2}
        assert back[0]["seed"] == 11

    def test_read_history_missing_file(self, tmp_path):
        import report_schema
        assert report_schema.read_history(tmp_path / "nope.jsonl") == []

    def test_git_sha_prefers_env(self, monkeypatch):
        import report_schema
        monkeypatch.setenv("GITHUB_SHA", "abc123")
        assert report_schema.git_sha() == "abc123"

    def test_harness_reports_share_the_schema(self):
        """Both report writers import the shared module (no drifted
        copies of the meta block)."""
        import pathlib
        text = pathlib.Path("benchmarks/perf_harness.py").read_text()
        assert "report_meta" in text and "history_entry" in text


class TestCompareHistory:
    def entry(self, sha, fig6, fig7, scales=None, smoke=True):
        return {"schema": 1, "git_sha": sha, "smoke": smoke,
                "scales": scales or {"cars": 40},
                "metrics": {"fig6_replay_speedup": fig6,
                            "fig7_read_path_speedup": fig7}}

    def test_ok_within_tolerance(self):
        report = compare([self.entry("a", 10.0, 5.0),
                          self.entry("b", 9.0, 5.3)])
        assert report["status"] == "ok"
        assert report["baseline_sha"] == "a"
        assert {check["metric"] for check in report["checks"]} == \
            set(REGRESSION_METRICS)

    def test_regression_beyond_tolerance(self):
        report = compare([self.entry("a", 10.0, 5.0),
                          self.entry("b", 7.0, 5.0)], tolerance=0.2)
        assert report["status"] == "regression"
        bad = [check for check in report["checks"]
               if check["status"] == "regression"]
        assert bad[0]["metric"] == "fig6_replay_speedup"

    def test_baseline_requires_matching_scales_and_smoke(self):
        history = [self.entry("full", 1.0, 1.0, scales={"cars": 999},
                              smoke=False),
                   self.entry("ci", 10.0, 5.0)]
        assert compare(history)["status"] == "baseline"

    def test_skips_mismatched_intermediate_entries(self):
        history = [self.entry("a", 10.0, 5.0),
                   self.entry("full", 1.0, 1.0, scales={"cars": 999}),
                   self.entry("b", 9.9, 5.0)]
        report = compare(history)
        assert report["status"] == "ok"
        assert report["baseline_sha"] == "a"

    def test_empty_history(self):
        assert compare([])["status"] == "empty"

    def test_missing_metric_is_not_a_failure(self):
        history = [self.entry("a", 10.0, 5.0), self.entry("b", 9.9, 5.0)]
        del history[1]["metrics"]["fig7_read_path_speedup"]
        report = compare(history)
        assert report["status"] == "ok"
        statuses = {check["metric"]: check["status"]
                    for check in report["checks"]}
        assert statuses["fig7_read_path_speedup"] == "missing"

    def test_reads_history_from_path(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        with open(path, "w", encoding="utf-8") as stream:
            for entry in (self.entry("a", 10.0, 5.0),
                          self.entry("b", 9.9, 5.1)):
                stream.write(json.dumps(entry) + "\n")
        assert compare(path)["status"] == "ok"

    def test_compare_history_cli_exit_codes(self, tmp_path, capsys):
        from repro.benchmark.runner import main
        path = tmp_path / "hist.jsonl"
        with open(path, "w", encoding="utf-8") as stream:
            for entry in (self.entry("a", 10.0, 5.0),
                          self.entry("b", 6.0, 5.0)):
                stream.write(json.dumps(entry) + "\n")
        code = main(["compare-history", "--history", str(path),
                     "--tolerance", "0.2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1 and payload["status"] == "regression"
        code = main(["compare-history", "--history", str(path),
                     "--tolerance", "0.9"])
        capsys.readouterr()
        assert code == 0
