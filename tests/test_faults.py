"""Unit tests for the fault-injection framework and retry policy.

Covers the plan grammar (``seam:kind[:field]*``), deterministic
trigger semantics (``n=`` budgets, seeded probabilities, tag
filters), the :func:`repro.faults.fire` seam dispatch, and the
jittered-exponential-backoff :class:`RetryPolicy` / ``retry_call``
machinery the store builds on.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro import faults
from repro.errors import FaultInjectedError
from repro.faults import (FaultError, FaultPlan, RetryPolicy,
                          is_transient_sqlite_error, parse_plan,
                          parse_spec, retry_call)


@pytest.fixture(autouse=True)
def no_ambient_plan():
    """Each test starts and ends with injection off."""
    faults.clear()
    yield
    faults.clear()


class TestPlanGrammar:
    def test_minimal_spec(self):
        spec = parse_spec("store.commit:locked")
        assert spec.seam == "store.commit" and spec.kind == "locked"
        assert spec.probability == 1.0 and spec.count is None
        assert spec.filters == {}

    def test_all_fields(self):
        spec = parse_spec(
            "spool.read:io:p=0.25:n=3:run_id=run-0002:op=put_graph")
        assert spec.probability == 0.25 and spec.count == 3
        assert spec.filters == {"run_id": "run-0002", "op": "put_graph"}

    def test_bare_number_is_probability(self):
        assert parse_spec("store.commit:busy:0.5").probability == 0.5

    def test_latency_seconds(self):
        assert parse_spec("store.commit:latency:secs=0.2").seconds == 0.2

    def test_comma_joined_plan(self):
        specs = parse_plan("store.commit:locked:n=1, pool.worker:kill")
        assert [spec.seam for spec in specs] == ["store.commit",
                                                "pool.worker"]

    def test_empty_plan(self):
        assert parse_plan("") == []

    @pytest.mark.parametrize("bad", [
        "nosuchseam:locked", "store.commit:nosuchkind",
        "store.commit", "store.commit:locked:p=oops",
        "store.commit:locked:2.0",  # probability out of range
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(FaultError):
            parse_spec(bad)


class TestPlanTriggers:
    def test_count_budget_is_exact(self):
        plan = FaultPlan("store.commit:locked:n=2")
        fired = [bool(plan.select("store.commit", {})) for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert plan.injected() == 2

    def test_seam_mismatch_never_fires(self):
        plan = FaultPlan("store.commit:locked")
        assert plan.select("spool.read", {}) == []

    def test_tag_filters_are_substring(self):
        plan = FaultPlan("store.commit:locked:run_id=run-00")
        assert plan.select("store.commit", {"run_id": "run-0042"})
        assert not plan.select("store.commit", {"run_id": "other"})
        assert not plan.select("store.commit", {})

    def test_seeded_probability_is_reproducible(self):
        draws = []
        for _ in range(2):
            plan = FaultPlan("store.commit:locked:p=0.5", seed=1234)
            draws.append([bool(plan.select("store.commit", {}))
                          for _ in range(32)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])


class TestFire:
    def test_noop_without_plan(self):
        faults.fire("store.commit")  # must not raise

    def test_locked_raises_operational_error(self):
        with faults.injecting("store.commit:locked"):
            with pytest.raises(sqlite3.OperationalError,
                               match="database is locked"):
                faults.fire("store.commit", run_id="run-x")

    def test_io_raises_oserror(self):
        with faults.injecting("spool.read:io"):
            with pytest.raises(OSError):
                faults.fire("spool.read", path="/tmp/x")

    def test_error_kind_raises_fault_injected(self):
        with faults.injecting("pool.worker:error"):
            with pytest.raises(FaultInjectedError):
                faults.fire("pool.worker", run_id="run-x")

    def test_latency_sleeps_then_continues(self):
        with faults.injecting("store.commit:latency:secs=0.0"):
            faults.fire("store.commit")  # returns, no exception
            assert faults.injected() == 1

    def test_injecting_restores_previous_plan(self):
        outer = faults.configure("store.commit:locked:n=9")
        with faults.injecting("spool.read:io"):
            assert faults.active() is not outer
        assert faults.active() is outer

    def test_configure_from_env(self):
        plan = faults.configure_from_env(
            {"REPRO_FAULTS": "store.commit:busy:n=1",
             "REPRO_FAULTS_SEED": "7"})
        assert plan is faults.active()
        assert plan.seed == 7
        with pytest.raises(sqlite3.OperationalError):
            faults.fire("store.commit")

    def test_configure_from_env_empty_is_none(self):
        assert faults.configure_from_env({}) is None


class TestRetryPolicy:
    def test_transient_classification(self):
        assert is_transient_sqlite_error(
            sqlite3.OperationalError("database is locked"))
        assert is_transient_sqlite_error(
            sqlite3.OperationalError("disk I/O error"))
        assert not is_transient_sqlite_error(
            sqlite3.OperationalError("no such table: runs"))
        assert not is_transient_sqlite_error(ValueError("locked"))

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_seconds=0.1, multiplier=2.0,
                             max_sleep_seconds=0.3, seed=0)
        sleeps = [policy.sleep_for(k) for k in (1, 2, 3, 4)]
        # raw schedule 0.1, 0.2, 0.3(cap), 0.3(cap); jitter in [0.5, 1.5)
        assert 0.05 <= sleeps[0] < 0.15
        assert 0.10 <= sleeps[1] < 0.30
        assert all(sleep < 0.45 for sleep in sleeps)

    def test_seeded_schedule_is_reproducible(self):
        first = [RetryPolicy(seed=42).sleep_for(k) for k in (1, 2, 3)]
        second = [RetryPolicy(seed=42).sleep_for(k) for k in (1, 2, 3)]
        assert first == second

    def test_from_env(self):
        policy = RetryPolicy.from_env({
            "REPRO_RETRY_ATTEMPTS": "7",
            "REPRO_RETRY_BASE_SECONDS": "0.01",
            "REPRO_RETRY_DEADLINE_SECONDS": "5"})
        assert policy.attempts == 7
        assert policy.base_seconds == 0.01
        assert policy.deadline_seconds == 5.0

    def test_at_least_one_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class TestRetryCall:
    def test_retries_transient_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        slept = []
        policy = RetryPolicy(attempts=5, base_seconds=0.01, seed=0)
        assert retry_call(flaky, policy, operation="test",
                          sleep=slept.append) == "ok"
        assert len(calls) == 3 and len(slept) == 2

    def test_non_transient_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("nope")

        with pytest.raises(ValueError):
            retry_call(broken, RetryPolicy(attempts=5),
                       operation="test", sleep=lambda _s: None)
        assert len(calls) == 1

    def test_exhausted_attempts_reraise_last_error(self):
        def always_locked():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            retry_call(always_locked, RetryPolicy(attempts=3, seed=0),
                       operation="test", sleep=lambda _s: None)
