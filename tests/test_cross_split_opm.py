"""Tests for CROSS / SPLIT statements and the OPM export."""

import io
import json

import pytest

from repro.datamodel import FieldType, Relation, Schema
from repro.errors import PigSyntaxError
from repro.graph import GraphBuilder, NodeKind, to_opm
from repro.piglatin import Interpreter, ast, parse
from repro.queries import coarse_view

ITEMS = Schema.of(("Item", FieldType.CHARARRAY), ("Qty", FieldType.INT))
TAGS = Schema.of(("Tag", FieldType.CHARARRAY),)


def env():
    return {
        "Items": Relation.from_values(ITEMS, [("a", 1), ("b", 5), ("c", 9)]),
        "Tags": Relation.from_values(TAGS, [("x",), ("y",)]),
    }


class TestCross:
    def test_parse(self):
        statement = parse("C = CROSS A, B;").statements[0]
        assert isinstance(statement, ast.Cross)
        assert statement.input_aliases == ("A", "B")

    def test_needs_two_inputs(self):
        with pytest.raises(PigSyntaxError):
            parse("C = CROSS A;")

    def test_cartesian_product(self):
        result = Interpreter().execute("C = CROSS Items, Tags;", env())
        crossed = result.relation("C")
        assert len(crossed) == 6
        assert crossed.schema.names == ("Items::Item", "Items::Qty",
                                        "Tags::Tag")

    def test_three_way(self):
        e = env()
        e["More"] = Relation.from_values(TAGS, [("z",)])
        result = Interpreter().execute("C = CROSS Items, Tags, More;", e)
        assert len(result.relation("C")) == 6

    def test_provenance_is_joint(self):
        builder = GraphBuilder()
        builder.begin_invocation("M")
        result = Interpreter(builder).execute("C = CROSS Items, Tags;", env())
        builder.end_invocation()
        for row in result.relation("C").rows:
            node = builder.graph.node(row.prov)
            assert node.kind is NodeKind.TIMES
            assert len(builder.graph.preds(row.prov)) == 2

    def test_empty_side(self):
        e = env()
        e["Tags"] = Relation.empty(TAGS)
        result = Interpreter().execute("C = CROSS Items, Tags;", e)
        assert len(result.relation("C")) == 0


class TestSplit:
    def test_parse(self):
        statement = parse(
            "SPLIT Items INTO Small IF Qty < 3, Big IF Qty >= 3;").statements[0]
        assert isinstance(statement, ast.Split)
        assert [alias for alias, _cond in statement.branches] == [
            "Small", "Big"]

    def test_partitions(self):
        result = Interpreter().execute(
            "SPLIT Items INTO Small IF Qty < 3, Big IF Qty >= 3;", env())
        assert result.relation("Small").value_rows() == [("a", 1)]
        assert len(result.relation("Big")) == 2

    def test_overlapping_branches(self):
        # Tuples go to every matching branch (Pig semantics).
        result = Interpreter().execute(
            "SPLIT Items INTO Lo IF Qty < 6, Mid IF Qty > 0;", env())
        assert len(result.relation("Lo")) == 2
        assert len(result.relation("Mid")) == 3

    def test_provenance_like_filter(self):
        e = env()
        builder = GraphBuilder()
        builder.begin_invocation("M")
        result = Interpreter(builder).execute(
            "SPLIT Items INTO Small IF Qty < 3, Big IF Qty >= 3;", e)
        builder.end_invocation()
        base = {row.prov for row in e["Items"].rows}
        for alias in ("Small", "Big"):
            for row in result.relation(alias).rows:
                assert row.prov in base  # compact filter semantics

    def test_branches_usable_downstream(self):
        script = """
SPLIT Items INTO Small IF Qty < 3, Big IF Qty >= 3;
U = UNION Small, Big;
"""
        result = Interpreter().execute(script, env())
        assert len(result.relation("U")) == 3


class TestOPMExport:
    @pytest.fixture
    def tracked_graph(self):
        builder = GraphBuilder()
        builder.begin_invocation("M")
        Interpreter(builder).execute("""
G = GROUP Items BY Item;
C = FOREACH G GENERATE group, COUNT(Items) AS n;
""", env())
        builder.end_invocation()
        return builder.graph

    def test_partition_covers_all_nodes(self, tracked_graph):
        document = to_opm(tracked_graph)
        total = len(document.artifacts) + len(document.processes)
        assert total == tracked_graph.node_count

    def test_module_is_process_tuples_are_artifacts(self, tracked_graph):
        document = to_opm(tracked_graph)
        process_kinds = {record["kind"]
                         for record in document.processes.values()}
        artifact_kinds = {record["kind"]
                          for record in document.artifacts.values()}
        assert "module" in process_kinds
        assert "tuple" in artifact_kinds
        assert process_kinds.isdisjoint(artifact_kinds)

    def test_edge_count_preserved(self, tracked_graph):
        document = to_opm(tracked_graph)
        assert document.edge_count == tracked_graph.edge_count

    def test_dependency_directions(self, tracked_graph):
        document = to_opm(tracked_graph)
        # Every `used` points process ← artifact.
        for record in document.used:
            assert record["process"].startswith("p")
            assert record["artifact"].startswith("a")
        for record in document.was_generated_by:
            assert record["artifact"].startswith("a")
            assert record["process"].startswith("p")

    def test_json_round_trip(self, tracked_graph, tmp_path):
        document = to_opm(tracked_graph)
        buffer = io.StringIO()
        document.dump(buffer)
        parsed = json.loads(buffer.getvalue())
        assert "opm" in parsed
        path = tmp_path / "graph.opm.json"
        document.dump(str(path))
        assert json.loads(path.read_text())["opm"]["processes"]

    def test_coarse_view_export_is_classic_opm(self, dealership_execution):
        # ZoomOut everything, then export: processes are only module
        # invocations and zoom boxes — classic coarse-grained OPM.
        graph, _outputs, _run, _executor = dealership_execution
        coarse = coarse_view(graph)
        document = to_opm(coarse)
        kinds = {record["kind"] for record in document.processes.values()}
        assert kinds <= {"module", "zoom"}
