"""Unit tests for modules, workflow DAGs, execution, and the tracker."""

import pytest

from repro.datamodel import FieldType, Relation, Schema
from repro.errors import WorkflowDefinitionError, WorkflowExecutionError
from repro.graph import GraphBuilder, NodeKind, load_graph
from repro.workflow import (
    Module,
    ModuleRegistry,
    ProvenanceTracker,
    Workflow,
    WorkflowExecutor,
)

ITEMS = Schema.of(("Item", FieldType.CHARARRAY), ("Qty", FieldType.INT))
TOTALS = Schema.of(("Total", FieldType.INT),)
LOG = Schema.of(("Item", FieldType.CHARARRAY), ("Qty", FieldType.INT))


def _source_module():
    return Module("Msrc", output_schemas={"Items": ITEMS})


def _sum_module():
    """Accumulates every seen item in state, outputs the running total."""
    return Module(
        "Msum",
        input_schemas={"Items": ITEMS},
        state_schemas={"Log": LOG},
        output_schemas={"Totals": TOTALS},
        q_state="""
NewLog = FOREACH Items GENERATE Item, Qty;
Log = UNION Log, NewLog;
""",
        q_out="""
G = GROUP Log ALL;
Totals = FOREACH G GENERATE SUM(Log.Qty) AS Total;
""",
    )


def _sink_module():
    return Module(
        "Msink",
        input_schemas={"Totals": TOTALS},
        output_schemas={"Report": TOTALS},
        q_out="Report = FOREACH Totals GENERATE Total;",
    )


def _simple_workflow():
    modules = ModuleRegistry()
    modules.add(_source_module())
    modules.add(_sum_module())
    modules.add(_sink_module())
    workflow = Workflow("totals")
    workflow.add_node("src", "Msrc", is_input=True)
    workflow.add_node("sum", "Msum")
    workflow.add_node("sink", "Msink", is_output=True)
    workflow.add_edge("src", "sum", ["Items"])
    workflow.add_edge("sum", "sink", ["Totals"])
    return workflow, modules


class TestModule:
    def test_schema_disjointness_enforced(self):
        with pytest.raises(WorkflowDefinitionError):
            Module("M", input_schemas={"R": ITEMS},
                   output_schemas={"R": ITEMS})

    def test_input_module_detection(self):
        assert _source_module().is_input_module
        assert not _sum_module().is_input_module

    def test_initial_state(self):
        state = _sum_module().initial_state()
        assert set(state) == {"Log"}
        assert len(state["Log"]) == 0

    def test_specialized_shares_spec(self):
        dealer = _sum_module().specialized("Msum2")
        assert dealer.name == "Msum2"
        assert dealer.q_state == _sum_module().q_state
        assert dealer.input_schemas == _sum_module().input_schemas

    def test_queries_parsed_once(self):
        module = _sum_module()
        assert module.q_state_ast is not None
        assert module.q_out_ast is not None

    def test_registry_rejects_duplicates(self):
        registry = ModuleRegistry()
        registry.add(_source_module())
        with pytest.raises(WorkflowDefinitionError):
            registry.add(_source_module())

    def test_registry_lookup(self):
        registry = ModuleRegistry()
        module = registry.add(_source_module())
        assert registry.module("Msrc") is module
        assert "Msrc" in registry
        with pytest.raises(WorkflowDefinitionError):
            registry.module("Nope")


class TestWorkflowValidation:
    def test_valid_workflow_passes(self):
        workflow, modules = _simple_workflow()
        workflow.validate(modules)

    def test_duplicate_node_rejected(self):
        workflow = Workflow()
        workflow.add_node("a", "M")
        with pytest.raises(WorkflowDefinitionError):
            workflow.add_node("a", "M")

    def test_unknown_module_label(self):
        workflow, modules = _simple_workflow()
        workflow.add_node("ghost", "Mghost")
        workflow.add_edge("sum", "ghost", ["Totals"])
        with pytest.raises(WorkflowDefinitionError):
            workflow.validate(modules)

    def test_edge_endpoints_must_exist(self):
        workflow = Workflow()
        workflow.add_node("a", "M")
        with pytest.raises(WorkflowDefinitionError):
            workflow.add_edge("a", "missing", ["R"])

    def test_edge_needs_relations(self):
        workflow, _modules = _simple_workflow()
        with pytest.raises(WorkflowDefinitionError):
            workflow.add_edge("src", "sum", [])

    def test_cycle_detected(self):
        modules = ModuleRegistry()
        loop = Module("Mloop", input_schemas={"Totals": TOTALS},
                      output_schemas={"Items": ITEMS})
        modules.add(loop)
        consumer = Module("Mback", input_schemas={"Items": ITEMS},
                          output_schemas={"Totals": TOTALS})
        modules.add(consumer)
        workflow = Workflow()
        workflow.add_node("a", "Mloop")
        workflow.add_node("b", "Mback")
        workflow.add_edge("a", "b", ["Items"])
        workflow.add_edge("b", "a", ["Totals"])
        with pytest.raises(WorkflowDefinitionError):
            workflow.validate(modules)

    def test_disconnected_rejected(self):
        workflow, modules = _simple_workflow()
        workflow.add_node("island", "Msrc", is_input=True)
        with pytest.raises(WorkflowDefinitionError):
            workflow.validate(modules)

    def test_relation_must_be_in_source_sout(self):
        workflow, modules = _simple_workflow()
        workflow.edges[0].relations = ("Nope",)
        with pytest.raises(WorkflowDefinitionError):
            workflow.validate(modules)

    def test_incoming_relations_must_be_disjoint(self):
        workflow, modules = _simple_workflow()
        workflow.add_node("src2", "Msrc", is_input=True)
        workflow.add_edge("src2", "sum", ["Items"])
        with pytest.raises(WorkflowDefinitionError):
            workflow.validate(modules)

    def test_all_inputs_must_be_covered(self):
        modules = ModuleRegistry()
        modules.add(_source_module())
        modules.add(_sum_module())
        workflow = Workflow()
        workflow.add_node("src", "Msrc", is_input=True)
        workflow.add_node("sum", "Msum")
        # no edge: Msum's Items input is not covered
        with pytest.raises(WorkflowDefinitionError):
            workflow.validate(modules)

    def test_input_node_cannot_have_incoming(self):
        workflow, modules = _simple_workflow()
        workflow.input_nodes.add("sum")
        with pytest.raises(WorkflowDefinitionError):
            workflow.validate(modules)

    def test_output_node_cannot_have_outgoing(self):
        workflow, modules = _simple_workflow()
        workflow.output_nodes.add("src")
        with pytest.raises(WorkflowDefinitionError):
            workflow.validate(modules)

    def test_topological_order_is_deterministic(self):
        workflow, _modules = _simple_workflow()
        assert workflow.topological_order() == ["src", "sum", "sink"]


class TestExecution:
    def test_single_execution_output(self):
        workflow, modules = _simple_workflow()
        executor = WorkflowExecutor(workflow, modules)
        output = executor.execute({"src": {"Items": [("apple", 3),
                                                     ("pear", 4)]}})
        report = output.outputs_of("sink")["Report"]
        assert report.value_rows() == [(7,)]

    def test_state_threads_across_executions(self):
        workflow, modules = _simple_workflow()
        executor = WorkflowExecutor(workflow, modules)
        state = executor.new_state()
        executor.execute({"src": {"Items": [("apple", 3)]}}, state)
        second = executor.execute({"src": {"Items": [("pear", 4)]}}, state)
        report = second.outputs_of("sink")["Report"]
        assert report.value_rows() == [(7,)]  # 3 + 4 accumulated

    def test_execute_sequence(self):
        workflow, modules = _simple_workflow()
        executor = WorkflowExecutor(workflow, modules)
        outputs = executor.execute_sequence([
            {"src": {"Items": [("a", 1)]}},
            {"src": {"Items": [("b", 2)]}},
            {"src": {"Items": [("c", 3)]}},
        ])
        totals = [output.outputs_of("sink")["Report"].value_rows()[0][0]
                  for output in outputs]
        assert totals == [1, 3, 6]

    def test_missing_input_defaults_to_empty(self):
        workflow, modules = _simple_workflow()
        executor = WorkflowExecutor(workflow, modules)
        output = executor.execute({})
        report = output.outputs_of("sink")["Report"]
        # GROUP ALL over an empty log yields no groups, hence no total.
        assert report.value_rows() == []

    def test_provenance_node_structure(self):
        workflow, modules = _simple_workflow()
        builder = GraphBuilder()
        executor = WorkflowExecutor(workflow, modules, builder)
        executor.execute({"src": {"Items": [("apple", 3)]}})
        graph = builder.graph
        assert len(graph.nodes_of_kind(NodeKind.WORKFLOW_INPUT)) == 1
        # Two module invocations (sum + sink); input nodes are ·.
        assert len(graph.invocations) == 2
        sum_invocation = graph.invocations_of("Msum")[0]
        assert len(sum_invocation.input_nodes) == 1
        input_node = sum_invocation.input_nodes[0]
        assert graph.node(input_node).kind is NodeKind.INPUT
        assert sum_invocation.module_node in graph.preds(input_node)

    def test_state_nodes_created_per_invocation(self):
        workflow, modules = _simple_workflow()
        builder = GraphBuilder()
        executor = WorkflowExecutor(workflow, modules, builder)
        state = executor.new_state()
        executor.execute({"src": {"Items": [("apple", 3)]}}, state)
        executor.execute({"src": {"Items": [("pear", 2)]}}, state)
        invocations = builder.graph.invocations_of("Msum")
        assert len(invocations) == 2
        # Second invocation sees one accumulated state tuple.
        assert len(invocations[0].state_nodes) == 0
        assert len(invocations[1].state_nodes) == 1

    def test_invocation_recorded_in_output(self):
        workflow, modules = _simple_workflow()
        builder = GraphBuilder()
        executor = WorkflowExecutor(workflow, modules, builder)
        output = executor.execute({"src": {"Items": [("apple", 3)]}})
        assert "sum" in output.invocations
        assert "src" not in output.invocations  # input nodes don't invoke

    def test_workflow_outputs_helper(self):
        workflow, modules = _simple_workflow()
        executor = WorkflowExecutor(workflow, modules)
        output = executor.execute({"src": {"Items": [("apple", 3)]}})
        assert set(output.workflow_outputs(workflow)) == {"sink"}

    def test_state_load_validation(self):
        workflow, modules = _simple_workflow()
        executor = WorkflowExecutor(workflow, modules)
        state = executor.new_state()
        with pytest.raises(WorkflowExecutionError):
            state.load("Msum", {"Nope": [("a", 1)]}, modules)

    def test_state_total_rows(self):
        workflow, modules = _simple_workflow()
        executor = WorkflowExecutor(workflow, modules)
        state = executor.new_state()
        state.load("Msum", {"Log": [("a", 1), ("b", 2)]}, modules)
        assert state.total_rows() == 2

    def test_arity_conformance_error(self):
        modules = ModuleRegistry()
        modules.add(_source_module())
        modules.add(Module(
            "Mbad", input_schemas={"Items": ITEMS},
            output_schemas={"Totals": TOTALS},
            q_out="Totals = FOREACH Items GENERATE Item, Qty;"))
        workflow = Workflow()
        workflow.add_node("src", "Msrc", is_input=True)
        workflow.add_node("bad", "Mbad")
        workflow.add_edge("src", "bad", ["Items"])
        executor = WorkflowExecutor(workflow, modules)
        with pytest.raises(WorkflowExecutionError):
            executor.execute({"src": {"Items": [("a", 1)]}})


class TestTracker:
    def test_flush_round_trip(self, tmp_path):
        workflow, modules = _simple_workflow()
        tracker = ProvenanceTracker(str(tmp_path))
        executor = WorkflowExecutor(workflow, modules, tracker.builder)
        executor.execute({"src": {"Items": [("apple", 3)]}})
        path = tracker.flush()
        rebuilt = load_graph(path)
        assert rebuilt.node_count == tracker.graph.node_count
        rebuilt.check_consistency()

    def test_flush_numbering(self, tmp_path):
        tracker = ProvenanceTracker(str(tmp_path))
        first = tracker.flush()
        second = tracker.flush()
        assert first != second
