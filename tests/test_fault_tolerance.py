"""Integration tests for the fault-tolerance layer.

The scenarios the robustness work defends against, made to happen on
demand via :mod:`repro.faults`:

* SQLite lock storms -> retried with backoff, counters prove it;
* a poisoned/crashed ingest worker -> that run quarantined, the batch
  completes (or, with ``quarantine=False``, fail-fast);
* a killed worker process -> broken pool -> serial in-process fallback;
* SIGKILL mid-commit -> the ingest sentinel marks the partial run,
  ``repro doctor --repair`` rolls it back, and a re-ingest produces a
  byte-identical graph;
* a corrupted or missing shard -> degraded catalog reads and typed
  ``ShardUnavailableError`` point lookups instead of crashes;
* checksum drift -> detected by the doctor, quarantined on repair.
"""

from __future__ import annotations

import io
import json
import os
import signal
import sqlite3
import subprocess
import sys
import threading

import pytest

from repro import faults, obs
from repro.cli import main as cli_main
from repro.errors import (FaultInjectedError, ShardUnavailableError,
                          StoreError, StoreIOError)
from repro.faults.retry import RetryPolicy
from repro.graph.serialize import dump_graph
from repro.store import (DegradedResult, RunCatalog, SQLiteStore,
                         WorkloadSpec, diagnose, ingest_many, open_store,
                         repair)
from repro.store.sharded import shard_of

TINY = {"num_cars": 8, "num_exec": 2, "force_decline": True}
FAST_RETRY = dict(attempts=4, base_seconds=0.001, max_sleep_seconds=0.002)
REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


@pytest.fixture(autouse=True)
def clean_slate():
    """No ambient fault plan or telemetry before/after each test."""
    faults.clear()
    obs.disable()
    yield
    faults.clear()
    obs.disable()


def fresh_registry():
    return obs.enable(reset=True).registry


def counter_total(registry, name):
    return sum(snap["value"]
               for key, snap in registry.snapshot().items()
               if key.split("{")[0] == name)


def tiny_specs(count, prefix="run-t"):
    return [WorkloadSpec("dealerships", dict(TINY, seed=index),
                         run_id=f"{prefix}-{index + 1}")
            for index in range(count)]


def fast_store(path):
    return SQLiteStore(os.fspath(path),
                       retry_policy=RetryPolicy(seed=0, **FAST_RETRY))


def graph_bytes(store, run_id):
    buffer = io.StringIO()
    dump_graph(store.load_graph(run_id), buffer)
    return buffer.getvalue()


def run_cli(capsys, *argv):
    code = cli_main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRetryBackoff:
    def test_lock_contention_is_retried_and_ingest_succeeds(self, tmp_path):
        registry = fresh_registry()
        store = fast_store(tmp_path / "r.db")
        with store, faults.injecting("store.commit:locked:n=2"):
            infos = ingest_many(RunCatalog(store), tiny_specs(1))
            assert infos[0].node_count > 0
            assert store.has_run("run-t-1")
        assert counter_total(registry, "faults.injected_total") == 2
        assert counter_total(registry, "store.retries_total") >= 2
        assert counter_total(registry, "store.gave_up_total") == 0

    def test_exhausted_retries_give_up_with_counter(self, tmp_path):
        from repro.graph.provgraph import ProvenanceGraph
        registry = fresh_registry()
        store = fast_store(tmp_path / "g.db")
        with store, faults.injecting("store.commit:locked"):  # unbounded
            with pytest.raises(sqlite3.OperationalError):
                store.put_graph("run-x", ProvenanceGraph())
        assert counter_total(registry, "store.gave_up_total") >= 1
        assert counter_total(registry, "store.retries_total") >= 1

    def test_store_retry_policy_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RETRY_ATTEMPTS", "9")
        with SQLiteStore(os.fspath(tmp_path / "e.db")) as store:
            assert store.retry_policy.attempts == 9


class TestQuarantine:
    def test_serial_failure_quarantined_after_retries(self, tmp_path):
        registry = fresh_registry()
        store = fast_store(tmp_path / "q.db")
        specs = tiny_specs(3, prefix="run-q")
        # The fault budget outlasts retries=1 (two attempts), so
        # run-q-2's ingest exhausts and the run is quarantined; the
        # quarantine commit itself fires nothing (budget n=2 spent).
        plan = "store.commit:error:run_id=run-q-2:n=2"
        with store, faults.injecting(plan):
            infos = ingest_many(RunCatalog(store), specs, retries=1)
            assert [info.run_id for info in infos] == \
                ["run-q-1", "run-q-2", "run-q-3"]
            bad = store.run_info("run-q-2")
            assert bad.meta["quarantined"]["type"] == "FaultInjectedError"
            assert bad.meta["quarantined"]["attempts"] == 2
            assert bad.node_count == 0
            assert bad.source == "quarantined:dealerships"
            assert store.run_info("run-q-1").node_count > 0
            assert store.run_info("run-q-3").node_count > 0
            assert store.pending_runs() == []  # quarantine is a commit
        assert counter_total(registry, "ingest.quarantined_total") == 1
        assert counter_total(registry, "ingest.retries_total") == 1

    def test_parallel_worker_failure_quarantined(self, tmp_path):
        registry = fresh_registry()
        store = fast_store(tmp_path / "p.db")
        specs = tiny_specs(3, prefix="run-p")
        with store, faults.injecting("pool.worker:error:run_id=run-p-2"):
            infos = ingest_many(RunCatalog(store), specs, workers=2,
                                retries=0)
            assert [info.run_id for info in infos] == \
                ["run-p-1", "run-p-2", "run-p-3"]
            assert store.run_info("run-p-2").meta["quarantined"]
            assert store.run_info("run-p-1").node_count > 0
            assert store.run_info("run-p-3").node_count > 0
        assert counter_total(registry, "ingest.quarantined_total") == 1

    def test_parallel_transient_failure_retried_to_success(self, tmp_path):
        registry = fresh_registry()
        store = fast_store(tmp_path / "rt.db")
        specs = tiny_specs(3, prefix="run-r")
        # n=1 per forked worker process; with 2 workers, at most two
        # attempts hit an unspent budget, so retries=2 always wins.
        plan = "pool.worker:error:run_id=run-r-2:n=1"
        with store, faults.injecting(plan):
            infos = ingest_many(RunCatalog(store), specs, workers=2,
                                retries=2)
            for info in infos:
                assert (info.meta or {}).get("quarantined") is None
                assert info.node_count > 0
        assert counter_total(registry, "ingest.retries_total") >= 1
        assert counter_total(registry, "ingest.quarantined_total") == 0

    def test_quarantine_false_fails_fast(self, tmp_path):
        store = fast_store(tmp_path / "ff.db")
        with store, faults.injecting("pool.worker:error:run_id=run-f-2"):
            with pytest.raises(FaultInjectedError):
                ingest_many(RunCatalog(store), tiny_specs(3, "run-f"),
                            workers=2, retries=0, quarantine=False)

    def test_killed_worker_breaks_pool_but_not_batch(self, tmp_path):
        registry = fresh_registry()
        store = fast_store(tmp_path / "k.db")
        specs = tiny_specs(4, prefix="run-k")
        # The kill fires once, in one worker process; the parent's own
        # plan copy never fires because the serial fallback path does
        # not pass the pool.worker seam.
        plan = "pool.worker:kill:run_id=run-k-2:n=1"
        with store, faults.injecting(plan):
            infos = ingest_many(RunCatalog(store), specs, workers=2,
                                retries=1)
            assert [info.run_id for info in infos] == \
                [f"run-k-{i}" for i in (1, 2, 3, 4)]
            for spec in specs:
                assert store.run_info(spec.run_id).node_count > 0
            assert store.pending_runs() == []
        assert counter_total(registry, "ingest.pool_breaks_total") == 1

    def test_parallel_matches_serial_bytes_despite_faults(self, tmp_path):
        clean = fast_store(tmp_path / "clean.db")
        faulty = fast_store(tmp_path / "faulty.db")
        plan = "pool.worker:error:run_id=run-s-3:n=1"
        with clean, faulty, faults.injecting(plan):
            ingest_many(RunCatalog(clean), tiny_specs(3, "run-s"))
            ingest_many(RunCatalog(faulty), tiny_specs(3, "run-s"),
                        workers=2, retries=2)
            for index in (1, 2, 3):
                run_id = f"run-s-{index}"
                assert graph_bytes(clean, run_id) == \
                    graph_bytes(faulty, run_id)


class TestCrashRecovery:
    def test_sentinel_marks_fresh_partial(self, tmp_path):
        with fast_store(tmp_path / "s.db") as store:
            store.mark_pending("run-dead")
            assert store.pending_runs() == ["run-dead"]
            report = diagnose(store)
            assert report.partial_runs == [
                {"run_id": "run-dead", "state": "no data committed"}]
            assert not report.healthy
            report = repair(store, report)
            assert store.pending_runs() == []
            assert diagnose(store).healthy
            assert report.repaired[0]["action"] == \
                "rolled back partial ingest"

    def test_crashed_overwrite_keeps_previous_version(self, tmp_path):
        store = fast_store(tmp_path / "o.db")
        with store:
            ingest_many(RunCatalog(store), tiny_specs(1, "run-o"))
            before = graph_bytes(store, "run-o-1")
            store.mark_pending("run-o-1")  # overwrite started, then died
            report = diagnose(store)
            assert report.partial_runs == [
                {"run_id": "run-o-1", "state": "previous version intact"}]
            repair(store, report)
            # Repair never deletes committed data.
            assert graph_bytes(store, "run-o-1") == before
            assert diagnose(store).healthy

    def test_commit_clears_sentinel_atomically(self, tmp_path):
        with fast_store(tmp_path / "a.db") as store:
            store.mark_pending("run-a-1")
            ingest_many(RunCatalog(store), tiny_specs(1, "run-a"))
            assert store.pending_runs() == []

    def test_sigkill_mid_commit_then_doctor_repair(self, tmp_path):
        """The headline acceptance scenario, end to end in real
        processes: a SIGKILL during the data commit leaves a
        detectable partial, ``doctor --repair`` rolls it back, and
        re-ingesting produces bytes identical to a never-crashed
        store."""
        db = os.fspath(tmp_path / "crash.db")
        clean_db = os.fspath(tmp_path / "clean.db")
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        ingest = [sys.executable, "-m", "repro", "ingest", "--db", db,
                  "--run", "run-b", "--cars", "8", "--executions", "2"]

        killed = subprocess.run(
            ingest, env=dict(
                env, REPRO_FAULTS="store.commit:kill:op=put_graph"),
            capture_output=True, timeout=120)
        assert killed.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL)

        with open_store(db) as store:
            assert store.pending_runs() == ["run-b"]
            assert not store.has_run("run-b")

        doctor = [sys.executable, "-m", "repro", "doctor", "--db", db]
        scan = subprocess.run(doctor, env=env, capture_output=True,
                              text=True, timeout=120)
        assert scan.returncode == 1
        assert "partial ingest run-b" in scan.stdout

        fixed = subprocess.run(doctor + ["--repair"], env=env,
                               capture_output=True, text=True, timeout=120)
        assert fixed.returncode == 0, fixed.stdout + fixed.stderr
        assert "rolled back partial ingest" in fixed.stdout

        for target in (db, clean_db):
            done = subprocess.run(
                ingest[:5] + [target] + ingest[6:], env=env,
                capture_output=True, timeout=120)
            assert done.returncode == 0, done.stderr
        with open_store(db) as recovered, open_store(clean_db) as clean:
            assert recovered.pending_runs() == []
            assert graph_bytes(recovered, "run-b") == \
                graph_bytes(clean, "run-b")


def _corrupt(path):
    with open(path, "r+b") as handle:
        handle.write(b"this is not a sqlite database " * 8)


class TestDegradedReads:
    @pytest.fixture
    def sharded_db(self, tmp_path):
        """A 2-shard store with one run per shard; returns (path,
        {shard_index: run_id})."""
        db = os.fspath(tmp_path / "sh.db")
        by_shard = {}
        candidates = tiny_specs(8, prefix="run-d")
        chosen = []
        for spec in candidates:
            index = shard_of(spec.run_id, 2)
            if index not in by_shard:
                by_shard[index] = spec.run_id
                chosen.append(spec)
            if len(by_shard) == 2:
                break
        with open_store(db, shards=2) as store:
            ingest_many(RunCatalog(store), chosen)
        return db, by_shard

    def test_corrupted_shard_degrades_catalog_reads(self, sharded_db):
        db, by_shard = sharded_db
        registry = fresh_registry()
        _corrupt(f"{db}.shard-01")
        with open_store(db) as store:
            runs = store.list_runs()
            assert isinstance(runs, DegradedResult) and runs.degraded
            assert runs.failures[0]["shard"] == 1
            assert [info.run_id for info in runs] == [by_shard[0]]
            # Point lookups fail typed, naming the shard...
            with pytest.raises(ShardUnavailableError) as excinfo:
                store.load_graph(by_shard[1])
            assert "shard 1" in str(excinfo.value)
            # ...while the healthy shard still serves.
            assert store.load_graph(by_shard[0]).node_count > 0
            stats = store.shard_stats()
            assert stats.degraded and "error" in stats[1]
        assert counter_total(registry, "store.degraded_reads_total") >= 1

    def test_missing_shard_file_not_recreated_empty(self, tmp_path):
        # Three shards so removing the *middle* one leaves the layout
        # detectable (losing the highest shard is indistinguishable
        # from a genuinely smaller store).
        db = os.fspath(tmp_path / "m3.db")
        by_shard = {}
        chosen = []
        for spec in tiny_specs(16, prefix="run-m"):
            index = shard_of(spec.run_id, 3)
            if index not in by_shard:
                by_shard[index] = spec.run_id
                chosen.append(spec)
            if len(by_shard) == 3:
                break
        assert len(by_shard) == 3
        with open_store(db, shards=3) as store:
            ingest_many(RunCatalog(store), chosen)
        os.remove(f"{db}.shard-01")
        with open_store(db) as store:
            runs = store.list_runs()
            assert runs.degraded and runs.failures[0]["shard"] == 1
            assert sorted(info.run_id for info in runs) == \
                sorted([by_shard[0], by_shard[2]])
            with pytest.raises(ShardUnavailableError):
                store.run_info(by_shard[1])
        # The missing file must not have been recreated as an empty db.
        assert not os.path.exists(f"{db}.shard-01")

    def test_doctor_reports_bad_shard(self, sharded_db):
        db, _by_shard = sharded_db
        _corrupt(f"{db}.shard-00")
        with open_store(db) as store:
            report = diagnose(store)
            assert not report.healthy
            assert report.unhealthy_shards[0]["shard"] == 0

    def test_runs_cli_warns_but_exits_zero(self, sharded_db, capsys):
        db, by_shard = sharded_db
        _corrupt(f"{db}.shard-01")
        code, out, err = run_cli(capsys, "runs", "--db", db)
        assert code == 0
        assert by_shard[0] in out
        assert "shard 1 unreachable" in err
        code, out, _err = run_cli(capsys, "runs", "--db", db, "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["degraded"][0]["shard"] == 1

    def test_runs_json_has_no_degraded_key_when_healthy(self, sharded_db,
                                                        capsys):
        db, _by_shard = sharded_db
        code, out, _err = run_cli(capsys, "runs", "--db", db, "--json")
        assert code == 0
        assert "degraded" not in json.loads(out)


class TestDoctor:
    def test_checksum_drift_detected_and_quarantined(self, tmp_path,
                                                     capsys):
        db = os.fspath(tmp_path / "c.db")
        with open_store(db) as store:
            ingest_many(RunCatalog(store), tiny_specs(2, "run-c"))
            # Forge the recorded spool hash: the stored graph no
            # longer matches what ingest claims was committed.
            meta = dict(store.run_info("run-c-1").meta)
            meta["ingest"] = dict(meta["ingest"], spool_sha256="0" * 64)
            store.set_run_meta("run-c-1", meta)
        code, out, _err = run_cli(capsys, "doctor", "--db", db)
        assert code == 1 and "checksum mismatch run-c-1" in out
        code, out, _err = run_cli(capsys, "doctor", "--db", db, "--repair")
        assert code == 0
        assert "quarantined (bad checksum)" in out
        with open_store(db) as store:
            # Quarantined, but kept for forensics.
            assert store.run_info("run-c-1").meta["quarantined"]
            assert store.load_graph("run-c-1").node_count > 0
            assert store.run_info("run-c-2").meta.get(
                "quarantined") is None

    def test_doctor_json_shape(self, tmp_path, capsys):
        db = os.fspath(tmp_path / "j.db")
        with open_store(db) as store:
            ingest_many(RunCatalog(store), tiny_specs(1, "run-j"))
        code, out, _err = run_cli(capsys, "doctor", "--db", db, "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["healthy"] is True and payload["problems"] == 0
        assert {"db", "healthy", "problems", "shards", "partial_runs",
                "quarantined", "checksum_failures", "unverifiable",
                "degraded", "repaired"} <= set(payload)

    def test_doctor_no_checksums_skips_verification(self, tmp_path,
                                                    capsys):
        db = os.fspath(tmp_path / "n.db")
        with open_store(db) as store:
            ingest_many(RunCatalog(store), tiny_specs(1, "run-n"))
            meta = dict(store.run_info("run-n-1").meta)
            meta["ingest"] = dict(meta["ingest"], spool_sha256="f" * 64)
            store.set_run_meta("run-n-1", meta)
        code, _out, _err = run_cli(capsys, "doctor", "--db", db,
                                   "--no-checksums")
        assert code == 0

    def test_doctor_unopenable_store_exits_one(self, tmp_path, capsys):
        db = os.fspath(tmp_path / "bad.db")
        with open(db, "wb") as handle:
            handle.write(b"garbage" * 100)
        code, out, _err = run_cli(capsys, "doctor", "--db", db)
        assert code == 1 and "cannot open store" in out


class TestSatellites:
    def test_reap_errors_counter_on_failing_close(self, tmp_path):
        registry = fresh_registry()
        store = SQLiteStore(os.fspath(tmp_path / "reap.db"))

        class BadConn:
            def close(self):
                raise sqlite3.OperationalError("close failed")

        store._thread_conns.append((threading.current_thread(), BadConn()))
        store.close()
        assert counter_total(registry, "store.reap_errors_total") == 1

    def test_open_store_rejects_conflicting_shard_count(self, tmp_path):
        db = os.fspath(tmp_path / "m.db")
        with open_store(db, shards=2) as store:
            ingest_many(RunCatalog(store), tiny_specs(1, "run-m"))
        with pytest.raises(StoreError, match="resharding"):
            open_store(db, shards=3)

    def test_open_store_autodetects_over_shards_one(self, tmp_path):
        """``shards=1`` over an existing sharded store must open the
        sharded layout, not a fresh empty db at the base path."""
        db = os.fspath(tmp_path / "auto.db")
        with open_store(db, shards=2) as store:
            ingest_many(RunCatalog(store), tiny_specs(1, "run-z"))
        with open_store(db, shards=1) as store:
            assert [info.run_id for info in store.list_runs()] == \
                ["run-z-1"]
        assert not os.path.exists(db)  # no stray unsharded file

    def test_store_io_error_carries_run_and_path(self, tmp_path):
        with fast_store(tmp_path / "io.db") as store:
            catalog = RunCatalog(store)
            with pytest.raises(StoreIOError) as excinfo:
                catalog.ingest(os.fspath(tmp_path / "missing.jsonl"),
                               run_id="run-io")
            message = str(excinfo.value)
            assert "run-io" in message and "missing.jsonl" in message

    def test_cli_spool_error_exits_nonzero_with_context(self, tmp_path,
                                                        capsys):
        db = os.fspath(tmp_path / "cli.db")
        missing = os.fspath(tmp_path / "nope.jsonl")
        code, _out, err = run_cli(capsys, "ingest", "--db", db,
                                  "--spool", missing, "--run", "run-s")
        assert code == 1
        assert "error:" in err and "nope.jsonl" in err and "run-s" in err

    def test_cli_ingest_reports_quarantine(self, tmp_path, capsys):
        db = os.fspath(tmp_path / "q.db")
        faults.configure("pool.worker:error:run_id=cli-q-02", seed=0)
        code, out, err = run_cli(
            capsys, "ingest", "--db", db, "--run", "cli-q", "--runs", "3",
            "--workers", "2", "--retries", "0", "--cars", "8",
            "--executions", "2", "--json")
        assert code == 0
        payload = json.loads(out)
        flagged = [info for info in payload["runs"]
                   if "quarantined" in info]
        assert [info["run_id"] for info in flagged] == ["cli-q-02"]
        healthy = [info for info in payload["runs"]
                   if "quarantined" not in info]
        assert len(healthy) == 2
        assert all(set(info) == {"run_id", "nodes", "edges", "invocations",
                                 "source", "ingest"} for info in healthy)
        assert "1 run(s) quarantined" in err
