"""Unit tests for annotated relations."""

import pytest

from repro.datamodel import FieldType, Relation, Row, Schema
from repro.errors import SchemaError


@pytest.fixture
def schema():
    return Schema.of(("CarId", FieldType.CHARARRAY),
                     ("Model", FieldType.CHARARRAY))


@pytest.fixture
def relation(schema):
    return Relation.from_values(schema, [("C1", "Accord"), ("C2", "Civic")])


class TestRow:
    def test_values_tuple(self):
        row = Row(["a", "b"], prov=3)
        assert row.values == ("a", "b")
        assert row.prov == 3

    def test_replaced_keeps_provenance(self):
        row = Row(("a",), prov=7)
        replaced = row.replaced(("b",))
        assert replaced.values == ("b",)
        assert replaced.prov == 7

    def test_equality_is_provenance_blind(self):
        assert Row(("a",), 1) == Row(("a",), 2)
        assert Row(("a",)) != Row(("b",))

    def test_repr_shows_provenance(self):
        assert "@4" in repr(Row(("a",), 4))


class TestRelation:
    def test_from_values(self, relation):
        assert len(relation) == 2
        assert relation.value_rows() == [("C1", "Accord"), ("C2", "Civic")]

    def test_empty(self, schema):
        assert len(Relation.empty(schema)) == 0
        assert not Relation.empty(schema)

    def test_arity_check(self, schema):
        with pytest.raises(SchemaError):
            Relation(schema, [Row(("only-one",))])

    def test_type_check(self):
        schema = Schema.of(("n", FieldType.INT))
        with pytest.raises(SchemaError):
            Relation(schema, [Row(("not-a-number",))])

    def test_add_and_append(self, schema):
        relation = Relation.empty(schema)
        row = relation.add(("C9", "Golf"), prov=1)
        assert row.prov == 1
        assert len(relation) == 1

    def test_column(self, relation):
        assert relation.column("Model") == ["Accord", "Civic"]

    def test_as_bag(self, relation):
        assert len(relation.as_bag()) == 2

    def test_copy_is_deep_on_rows(self, relation):
        duplicate = relation.copy()
        duplicate.rows[0].prov = 99
        assert relation.rows[0].prov is None

    def test_filter_rows(self, relation):
        kept = relation.filter_rows(lambda row: row.values[1] == "Civic")
        assert kept.value_rows() == [("C2", "Civic")]

    def test_map_values(self, relation):
        target = Schema.of("Model")
        mapped = relation.map_values(target, lambda row: (row.values[1],))
        assert mapped.value_rows() == [("Accord",), ("Civic",)]

    def test_bag_equality(self, schema):
        left = Relation.from_values(schema, [("a", "x"), ("b", "y")])
        right = Relation.from_values(schema, [("b", "y"), ("a", "x")])
        assert left == right

    def test_bag_equality_multiplicity(self, schema):
        left = Relation.from_values(schema, [("a", "x"), ("a", "x")])
        right = Relation.from_values(schema, [("a", "x")])
        assert left != right

    def test_pretty_renders_headers(self, relation):
        rendered = relation.pretty()
        assert "CarId" in rendered
        assert "Civic" in rendered

    def test_pretty_truncates(self, schema):
        relation = Relation.from_values(
            schema, [(f"C{i}", "Golf") for i in range(30)])
        assert "more rows" in relation.pretty(limit=5)

    def test_repr_truncates(self, schema):
        relation = Relation.from_values(
            schema, [(f"C{i}", "Golf") for i in range(10)])
        assert "10 rows" in repr(relation)
