"""Unit and concurrency tests for the telemetry layer.

Covers the metrics registry (family identity, kind conflicts, label
children, histogram bucket boundaries), parallel counter hammering,
span nesting within a thread and across threads via explicit
``TraceContext`` hand-off, the exporters, the disabled fast path, and
the named LRU cache counters.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.errors import StoreIOError, UnknownRunError
from repro.obs import (Counter, Gauge, Histogram, MetricsRegistry,
                       parse_prometheus_names, read_events, render_table,
                       to_prometheus)
from repro.store.catalog import LRUCache, RunCatalog
from repro.store.memory import MemoryStore


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    """Every test starts disabled and leaves no global context behind."""
    obs.disable()
    yield
    obs.disable()


class TestRegistry:
    def test_counter_family_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("store.commit_total")
        b = registry.counter("store.commit_total")
        assert a is b
        a.inc()
        a.inc(4)
        assert b.value == 5

    def test_labels_key_distinct_children(self):
        registry = MetricsRegistry()
        a = registry.counter("store.write_total", store="shard-00")
        b = registry.counter("store.write_total", store="shard-01")
        assert a is not b
        a.inc()
        assert (a.value, b.value) == (1, 0)
        # Label order does not matter.
        c = registry.gauge("g", x="1", y="2")
        d = registry.gauge("g", y="2", x="1")
        assert c is d

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_names_and_namespaces(self):
        registry = MetricsRegistry()
        registry.counter("store.commit_total")
        registry.counter("store.commit_total", store="a")
        registry.histogram("kernel.reach.run_seconds")
        registry.gauge("ingest.queue_depth")
        assert registry.names() == ["ingest.queue_depth",
                                    "kernel.reach.run_seconds",
                                    "store.commit_total"]
        assert registry.namespaces() == ["ingest", "kernel", "store"]

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == 12.0


class TestHistogram:
    def test_bucket_boundaries_are_inclusive(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        # A value equal to a bound lands in that bound's bucket
        # (Prometheus ``le`` semantics).
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 99.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"] == [(1.0, 2), (2.0, 4), (4.0, 5)]
        assert snap["inf"] == 6  # +Inf is cumulative over everything
        assert snap["count"] == 6
        assert snap["min"] == 0.5 and snap["max"] == 99.0
        assert snap["sum"] == pytest.approx(108.0)
        assert snap["mean"] == pytest.approx(18.0)

    def test_empty_snapshot(self):
        snap = Histogram("h", buckets=(1.0,)).snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["mean"] is None

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestConcurrency:
    def test_parallel_counter_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()
        threads_n, per_thread = 8, 5000

        def hammer():
            counter = registry.counter("hammered_total")
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("hammered_total").value == \
            threads_n * per_thread

    def test_parallel_histogram_observations(self):
        hist = Histogram("h", buckets=(0.5,))
        threads = [threading.Thread(
            target=lambda: [hist.observe(0.1) for _ in range(2000)])
            for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == 8000
        assert hist.sum == pytest.approx(800.0)


class TestSpans:
    def test_nesting_links_parent_ids(self):
        telemetry = obs.enable(reset=True)
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
        events = {event["name"]: event for event in telemetry.events.events()}
        assert events["inner"]["parent_id"] == events["outer"]["span_id"]
        assert events["outer"]["parent_id"] is None
        assert events["inner"]["seconds"] >= 0.0
        assert outer.context().trace_id == events["inner"]["trace_id"]

    def test_span_nesting_across_threads_via_explicit_context(self):
        telemetry = obs.enable(reset=True)
        with obs.span("root") as root:
            context = root.context()

            def worker():
                # Pool threads never inherit the contextvar; the
                # explicit TraceContext carries the link instead.
                with obs.span("child", parent=context):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        events = {event["name"]: event for event in telemetry.events.events()}
        assert events["child"]["parent_id"] == events["root"]["span_id"]
        assert events["child"]["trace_id"] == events["root"]["trace_id"]

    def test_finished_span_observes_duration_histogram(self):
        telemetry = obs.enable(reset=True)
        with obs.span("store.load_run"):
            pass
        hist = telemetry.registry.histogram("store.load_run.seconds")
        assert hist.count == 1

    def test_error_status_recorded(self):
        telemetry = obs.enable(reset=True)
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")
        (event,) = telemetry.events.events()
        assert event["status"] == "error"

    def test_event_log_file_sink_parses(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs.enable(trace_path=path, reset=True)
        with obs.span("a", run_id="run-1"):
            with obs.span("b"):
                pass
        obs.disable()  # closes the sink
        events = read_events(path)
        assert [event["name"] for event in events] == ["b", "a"]
        assert events[1]["tags"] == {"run_id": "run-1"}
        # Every line is standalone JSON.
        with open(path) as handle:
            for line in handle:
                json.loads(line)


class TestDisabledFastPath:
    def test_helpers_are_noops_when_disabled(self):
        assert not obs.enabled()
        obs.count("nope_total")
        obs.gauge("nope", 1.0)
        obs.observe("nope_seconds", 0.1)
        assert obs.get() is None
        assert obs.trace_context() is None

    def test_span_returns_shared_null_singleton(self):
        first = obs.span("a")
        second = obs.span("b", tag="x")
        assert first is second  # no allocation on the disabled path
        with first as span:
            assert span.context() is None

    def test_enable_is_idempotent_and_reset_is_fresh(self):
        first = obs.enable()
        assert obs.enable() is first
        first.registry.counter("c").inc()
        second = obs.enable(reset=True)
        assert second is not first
        assert second.registry.names() == []


class TestExporters:
    def test_prometheus_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("store.commit_total", store="a").inc(3)
        registry.gauge("store.wal_bytes").set(42)
        registry.histogram("kernel.reach.run_seconds").observe(0.002)
        text = to_prometheus(registry)
        assert 'store_commit_total{store="a"} 3' in text
        assert "# TYPE kernel_reach_run_seconds histogram" in text
        assert 'kernel_reach_run_seconds_bucket{le="+Inf"} 1' in text
        names = parse_prometheus_names(text)
        assert names == {"store_commit_total", "store_wal_bytes",
                         "kernel_reach_run_seconds"}

    def test_render_table_lists_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.histogram("b_seconds").observe(0.5)
        table = render_table(registry, title="t")
        assert "a_total" in table and "b_seconds" in table
        assert "count=1" in table
        assert render_table(MetricsRegistry()).endswith("(no metrics recorded)")


class TestNamedLRUCache:
    def test_info_counts_hits_misses_evictions(self):
        cache = LRUCache(2, name="demo")
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("c", lambda: 3)  # evicts "a"
        info = cache.info()
        assert info == {"hits": 1, "misses": 3, "evictions": 1,
                        "size": 2, "capacity": 2}

    def test_explicit_evict_counts(self):
        cache = LRUCache(4, name="demo")
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.evict(lambda key: True)
        assert cache.info()["evictions"] == 2

    def test_metrics_mirrored_when_enabled(self):
        telemetry = obs.enable(reset=True)
        cache = LRUCache(1, name="demo")
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)  # miss + eviction of "a"
        registry = telemetry.registry
        assert registry.counter("cache.demo.hits_total").value == 1
        assert registry.counter("cache.demo.misses_total").value == 2
        assert registry.counter("cache.demo.evictions_total").value == 1

    def test_unnamed_cache_emits_nothing(self):
        telemetry = obs.enable(reset=True)
        cache = LRUCache(2)
        cache.get_or_build("a", lambda: 1)
        assert telemetry.registry.names() == []


class TestStoreIOError:
    def test_ingest_wraps_missing_spool(self, tmp_path):
        catalog = RunCatalog(MemoryStore())
        missing = tmp_path / "nope.jsonl"
        with pytest.raises(StoreIOError) as excinfo:
            catalog.ingest(missing, run_id="r1")
        error = excinfo.value
        assert error.operation == "ingest"
        assert error.run_id == "r1"
        assert error.path == missing
        assert isinstance(error.__cause__, OSError)
        assert "r1" in str(error) and "nope.jsonl" in str(error)

    def test_export_wraps_unwritable_path(self, tmp_path):
        from repro.store.ingest import WorkloadSpec, ingest_many
        catalog = RunCatalog(MemoryStore())
        ingest_many(catalog, [WorkloadSpec(
            "dealerships", {"num_cars": 10, "num_exec": 1, "seed": 0})])
        target = tmp_path / "no-such-dir" / "out.jsonl"
        with pytest.raises(StoreIOError) as excinfo:
            catalog.export("run-0001", target)
        assert excinfo.value.operation == "export"
        assert excinfo.value.run_id == "run-0001"

    def test_unknown_run_is_not_masked(self, tmp_path):
        catalog = RunCatalog(MemoryStore())
        with pytest.raises(UnknownRunError):
            catalog.export("ghost", tmp_path / "out.jsonl")
