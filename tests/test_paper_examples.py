"""End-to-end reproduction of the paper's worked examples.

Example 2.3 (the dealer's state-manipulation query, intermediate
tables included), Example 3.x (provenance construction), and the
Section 4 deletion examples 4.3-4.5.
"""

import pytest

from repro.datamodel import FieldType, Relation, Schema
from repro.graph import GraphBuilder, NodeKind, to_expression
from repro.piglatin import Interpreter, UDFRegistry
from repro.provenance import BOOLEAN, COUNTING
from repro.queries import delete_base_tuples, depends_on_tuple

CARS = Schema.of(("CarId", FieldType.CHARARRAY),
                 ("Model", FieldType.CHARARRAY))
SOLD = Schema.of(("CarId", FieldType.CHARARRAY),
                 ("BidId", FieldType.CHARARRAY))
REQUESTS = Schema.of(("UserId", FieldType.CHARARRAY),
                     ("BidId", FieldType.CHARARRAY),
                     ("Model", FieldType.CHARARRAY))

#: The paper's Q_state for Mdealer1 (Example 2.1), verbatim modulo the
#: bid-history argument.
DEALER_SCRIPT = """
ReqModel = FOREACH Requests GENERATE Model;
Inventory = JOIN Cars BY Model, ReqModel BY Model;
SoldInventory = JOIN Inventory BY CarId, SoldCars BY CarId;
CarsByModel = GROUP Inventory BY Model;
SoldByModel = GROUP SoldInventory BY Model;
NumCarsByModel = FOREACH CarsByModel GENERATE group AS Model,
    COUNT(Inventory) AS NumAvail;
NumSoldByModel = FOREACH SoldByModel GENERATE group AS Model,
    COUNT(SoldInventory) AS NumSold;
AllInfoByModel = COGROUP Requests BY Model, NumCarsByModel BY Model,
    NumSoldByModel BY Model;
InventoryBids = FOREACH AllInfoByModel GENERATE
    FLATTEN(CalcBid(Requests, NumCarsByModel, NumSoldByModel));
"""


def calc_bid(requests, num_cars, num_sold):
    request = requests.rows[0].values
    available = num_cars.rows[0].values[1] if len(num_cars) else 0
    sold = num_sold.rows[0].values[1] if len(num_sold) else 0
    return [(request[1], request[0], request[2],
             25000 - 1000 * available - 500 * sold)]


@pytest.fixture
def dealer_run():
    env = {
        "Cars": Relation.from_values(CARS, [
            ("C1", "Accord"), ("C2", "Civic"), ("C3", "Civic")]),
        "SoldCars": Relation.from_values(SOLD, []),
        "Requests": Relation.from_values(REQUESTS, [("P1", "B1", "Civic")]),
    }
    udfs = UDFRegistry()
    udfs.register("CalcBid", calc_bid, returns_bag=True,
                  output_schema=Schema.of("BidId", "UserId", "Model",
                                          ("Amount", FieldType.INT)))
    builder = GraphBuilder()
    builder.begin_invocation("Mdealer1")
    interpreter = Interpreter(builder, udfs)
    result = interpreter.execute(DEALER_SCRIPT, env)
    builder.end_invocation()
    return env, result, builder.graph


class TestExample23IntermediateTables:
    def test_req_model(self, dealer_run):
        _env, result, _graph = dealer_run
        assert result.relation("ReqModel").value_rows() == [("Civic",)]

    def test_inventory(self, dealer_run):
        _env, result, _graph = dealer_run
        inventory = result.relation("Inventory")
        assert sorted(row.values[0] for row in inventory.rows) == ["C2", "C3"]

    def test_sold_inventory_empty(self, dealer_run):
        _env, result, _graph = dealer_run
        assert len(result.relation("SoldInventory")) == 0

    def test_cars_by_model(self, dealer_run):
        _env, result, _graph = dealer_run
        groups = result.relation("CarsByModel")
        assert len(groups) == 1
        key, bag = groups.rows[0].values
        assert key == "Civic" and len(bag) == 2

    def test_num_cars_by_model(self, dealer_run):
        _env, result, _graph = dealer_run
        assert result.relation("NumCarsByModel").value_rows() == [("Civic", 2)]

    def test_num_sold_empty(self, dealer_run):
        _env, result, _graph = dealer_run
        assert len(result.relation("NumSoldByModel")) == 0

    def test_all_info_by_model(self, dealer_run):
        _env, result, _graph = dealer_run
        rows = result.relation("AllInfoByModel").rows
        assert len(rows) == 1
        key, requests, num_cars, num_sold = rows[0].values
        assert key == "Civic"
        assert len(requests) == 1 and len(num_cars) == 1 and len(num_sold) == 0

    def test_inventory_bids(self, dealer_run):
        _env, result, _graph = dealer_run
        bids = result.relation("InventoryBids")
        assert bids.value_rows() == [("B1", "P1", "Civic", 23000)]


class TestExample3xGraphStructure:
    def test_projection_plus_node(self, dealer_run):
        # Example 3.1: ReqModel's tuple hangs off a + node (N50).
        _env, result, graph = dealer_run
        node = graph.node(result.relation("ReqModel").rows[0].prov)
        assert node.kind is NodeKind.PLUS

    def test_join_times_nodes(self, dealer_run):
        # Example 3.2: N60, N61 for the two joined cars.
        _env, result, graph = dealer_run
        for row in result.relation("Inventory").rows:
            assert graph.node(row.prov).kind is NodeKind.TIMES

    def test_group_delta_node(self, dealer_run):
        # Example 3.3: N71 for the single Civic group.
        _env, result, graph = dealer_run
        node = graph.node(result.relation("CarsByModel").rows[0].prov)
        assert node.kind is NodeKind.DELTA
        assert len(graph.preds(node.node_id)) == 2

    def test_count_aggregate_node(self, dealer_run):
        # Example 3.4: N70, the Count v-node over two tensors.
        _env, _result, graph = dealer_run
        counts = [node for node in graph.nodes_of_kind(NodeKind.AGG)
                  if node.label == "Count"]
        assert any(node.value == 2 for node in counts)
        civic_count = next(node for node in counts if node.value == 2)
        assert len(graph.preds(civic_count.node_id)) == 2

    def test_blackbox_node(self, dealer_run):
        # Example 3.6: the calcBid v-node N80 feeds the output tuple.
        _env, result, graph = dealer_run
        blackboxes = graph.nodes_of_kind(NodeKind.BLACKBOX)
        assert len(blackboxes) == 1
        bid_prov = result.relation("InventoryBids").rows[0].prov
        assert blackboxes[0].node_id in graph.ancestors(bid_prov)


class TestSection4DeletionExamples:
    def _label_of_car(self, env, graph, car_id):
        for row in env["Cars"].rows:
            if row.values[0] == car_id:
                return graph.node(row.prov).label
        raise AssertionError(f"no car {car_id}")

    def test_example_4_3_deleting_c2_keeps_bid(self, dealer_run):
        # "the calculation of the bid does not depend on the existence
        # of car C2" (Example 4.5): the bid survives C2's deletion, and
        # the COUNT is now applied to a single value (C3's).
        env, result, graph = dealer_run
        c2_label = self._label_of_car(env, graph, "C2")
        outcome = delete_base_tuples(graph, [c2_label])
        bid_prov = result.relation("InventoryBids").rows[0].prov
        assert outcome.survived(bid_prov)
        surviving_counts = [node for node in
                            outcome.graph.nodes_of_kind(NodeKind.AGG)
                            if node.label == "Count" and node.value == 2]
        for count in surviving_counts:
            assert len(outcome.graph.preds(count.node_id)) == 1

    def test_example_4_4_deleting_request_kills_everything(self, dealer_run):
        # Deleting the request deletes the whole graph except state
        # tuples and module invocation nodes.
        env, result, graph = dealer_run
        request_label = graph.node(env["Requests"].rows[0].prov).label
        outcome = delete_base_tuples(graph, [request_label])
        bid_prov = result.relation("InventoryBids").rows[0].prov
        assert not outcome.survived(bid_prov)
        surviving_kinds = {node.kind for node in outcome.graph.nodes.values()}
        assert surviving_kinds <= {NodeKind.TUPLE, NodeKind.MODULE,
                                   NodeKind.STATE, NodeKind.VALUE}

    def test_example_4_5_dependency_queries(self, dealer_run):
        env, result, graph = dealer_run
        bid_prov = result.relation("InventoryBids").rows[0].prov
        c2_label = self._label_of_car(env, graph, "C2")
        request_label = graph.node(env["Requests"].rows[0].prov).label
        assert not depends_on_tuple(graph, bid_prov, [c2_label])
        assert depends_on_tuple(graph, bid_prov, [request_label])

    def test_deleting_both_civics_matches_algebra(self, dealer_run):
        # Graph deletion and algebraic token deletion agree: removing
        # both Civics kills the join, the group, and the bid.
        env, result, graph = dealer_run
        c2 = self._label_of_car(env, graph, "C2")
        c3 = self._label_of_car(env, graph, "C3")
        group_prov = result.relation("CarsByModel").rows[0].prov
        expression = to_expression(graph, group_prov)
        dead_tokens = {token for token in expression.tokens()
                       if token.name in (c2, c3)}
        assert expression.delete_tokens(dead_tokens).is_zero()
        outcome = delete_base_tuples(graph, [c2, c3])
        assert not outcome.survived(group_prov)
