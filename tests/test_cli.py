"""Golden tests for the ``python -m repro ingest|query|runs`` CLI.

Exercises the surface the store CLI guarantees to scripts: exit
codes, the ``--json`` output shapes, multi-run parallel ingest
(``--runs`` / ``--workers``), shard partitioning with autodetection
on later commands, and spool import/export.  Commands run in-process
through ``repro.cli.main`` so stdout/stderr assertions stay cheap.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.store.sharded import detect_shard_count, shard_paths

INGEST_TINY = ["--cars", "15", "--executions", "2"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def run_json(capsys, *argv):
    code, out, err = run_cli(capsys, *argv, "--json")
    assert code == 0, err
    return json.loads(out)


@pytest.fixture
def db(tmp_path):
    return os.fspath(tmp_path / "cli.db")


class TestIngestGolden:
    def test_single_run_json_shape(self, db, capsys):
        payload = run_json(capsys, "ingest", "--db", db, "--run", "demo",
                           *INGEST_TINY)
        assert set(payload) == {"db", "workers", "seconds", "runs", "export"}
        assert payload["db"] == db and payload["workers"] == 1
        assert payload["seconds"] > 0 and payload["export"] is None
        (info,) = payload["runs"]
        assert set(info) == {"run_id", "nodes", "edges", "invocations",
                             "source", "ingest"}
        assert info["run_id"] == "demo"
        assert info["ingest"]["workers"] == 1
        assert info["ingest"]["wall_seconds"] > 0
        assert info["source"] == "workload:dealerships"
        assert info["nodes"] > 0 and info["edges"] > 0

    def test_multi_run_auto_names(self, db, capsys):
        payload = run_json(capsys, "ingest", "--db", db, "--runs", "3",
                           *INGEST_TINY)
        assert [info["run_id"] for info in payload["runs"]] == \
            ["run-0001", "run-0002", "run-0003"]

    def test_run_prefix_with_multiple_runs(self, db, capsys):
        payload = run_json(capsys, "ingest", "--db", db, "--runs", "2",
                           "--run", "bench", *INGEST_TINY)
        assert [info["run_id"] for info in payload["runs"]] == \
            ["bench-01", "bench-02"]

    def test_workers_flag_matches_serial_output(self, tmp_path, capsys):
        serial_db = os.fspath(tmp_path / "serial.db")
        parallel_db = os.fspath(tmp_path / "parallel.db")
        serial = run_json(capsys, "ingest", "--db", serial_db,
                          "--runs", "2", *INGEST_TINY)
        parallel = run_json(capsys, "ingest", "--db", parallel_db,
                            "--runs", "2", "--workers", "2", *INGEST_TINY)
        assert parallel["workers"] == 2
        for left, right in zip(serial["runs"], parallel["runs"]):
            assert (left["run_id"], left["nodes"], left["edges"]) == \
                (right["run_id"], right["nodes"], right["edges"])

    def test_human_readable_output(self, db, capsys):
        code, out, err = run_cli(capsys, "ingest", "--db", db,
                                 "--run", "demo", *INGEST_TINY)
        assert code == 0 and err == ""
        assert out.startswith("ingested demo:")
        assert f"-> {db}" in out

    def test_export_round_trips_through_spool_import(self, tmp_path,
                                                     capsys):
        db = os.fspath(tmp_path / "a.db")
        spool = os.fspath(tmp_path / "run.jsonl.gz")
        payload = run_json(capsys, "ingest", "--db", db, "--run", "demo",
                           "--export", spool, *INGEST_TINY)
        assert payload["export"]["path"] == spool
        assert payload["export"]["records"] > 0
        other_db = os.fspath(tmp_path / "b.db")
        code, out, _err = run_cli(capsys, "ingest", "--db", other_db,
                                  "--run", "copy", "--spool", spool)
        assert code == 0 and "ingested copy" in out
        original = run_json(capsys, "runs", "--db", db)["runs"][0]
        copied = run_json(capsys, "runs", "--db", other_db)["runs"][0]
        assert (original["nodes"], original["edges"]) == \
            (copied["nodes"], copied["edges"])

    def test_invalid_runs_count(self, db, capsys):
        code, _out, err = run_cli(capsys, "ingest", "--db", db,
                                  "--runs", "0")
        assert code == 1 and "--runs" in err


class TestShardedStore:
    def test_shards_create_files_and_autodetect(self, tmp_path, capsys):
        db = os.fspath(tmp_path / "sharded.db")
        run_json(capsys, "ingest", "--db", db, "--runs", "4",
                 "--shards", "3", *INGEST_TINY)
        for path in shard_paths(db, 3):
            assert os.path.exists(path)
        assert detect_shard_count(db) == 3
        # Later commands find the shards without being told.
        payload = run_json(capsys, "runs", "--db", db)
        assert len(payload["runs"]) == 4
        query = run_json(capsys, "query", "--db", db, "--run", "run-0001",
                         "--stats")
        assert query["run_id"] == "run-0001" and query["nodes"] > 0


class TestQueryGolden:
    @pytest.fixture
    def populated(self, db, capsys):
        run_json(capsys, "ingest", "--db", db, "--run", "demo",
                 *INGEST_TINY)
        return db

    def test_stats_json_shape(self, populated, capsys):
        payload = run_json(capsys, "query", "--db", populated, "--stats")
        assert set(payload) == {"run_id", "query", "nodes", "edges",
                                "invocations", "nodes_by_kind"}
        assert payload["query"] == "stats" and payload["run_id"] == "demo"
        assert sum(payload["nodes_by_kind"].values()) == payload["nodes"]

    def test_subgraph_json_shape_and_backend_agreement(self, populated,
                                                       capsys):
        csr = run_json(capsys, "query", "--db", populated,
                       "--subgraph", "0")
        assert set(csr) == {"run_id", "query", "node", "size", "ancestors",
                            "descendants", "siblings"}
        plain = run_json(capsys, "query", "--db", populated,
                         "--subgraph", "0", "--backend", "dict")
        assert csr == plain

    def test_reachable_json(self, populated, capsys):
        payload = run_json(capsys, "query", "--db", populated,
                           "--reachable", "0", "0")
        assert payload == {"run_id": "demo", "query": "reachable",
                           "source": 0, "target": 0, "reachable": True}

    def test_zoom_out_json(self, populated, capsys):
        payload = run_json(capsys, "query", "--db", populated,
                           "--zoom-out", "Mdealer1")
        assert payload["query"] == "zoom_out"
        assert payload["zoomed"] == ["Mdealer1"]
        assert payload["nodes"] > 0

    def test_proql_json(self, populated, capsys):
        payload = run_json(capsys, "query", "--db", populated, "--proql",
                           "MATCH kind=tuple | count")
        assert payload["query"] == "proql"
        assert "result" in payload

    def test_error_exit_codes(self, db, capsys):
        code, _out, err = run_cli(capsys, "query", "--db", db, "--stats")
        assert code == 1 and "no runs" in err
        run_json(capsys, "ingest", "--db", db, "--run", "demo",
                 *INGEST_TINY)
        code, _out, err = run_cli(capsys, "query", "--db", db,
                                  "--run", "nope", "--stats")
        assert code == 1 and "unknown run" in err


class TestRunsGolden:
    def test_empty_store_json(self, db, capsys):
        payload = run_json(capsys, "runs", "--db", db)
        assert payload["db"] == db and payload["runs"] == []
        assert set(payload) == {"db", "runs", "shards", "storage_bytes",
                                "cache_info"}
        assert payload["shards"] is None  # unsharded store
        assert set(payload["cache_info"]) == {"graphs", "processors", "csr",
                                              "reachability", "frozen"}

    def test_empty_store_text(self, db, capsys):
        code, out, _err = run_cli(capsys, "runs", "--db", db)
        assert code == 0 and "no runs" in out

    def test_listing_columns(self, db, capsys):
        run_json(capsys, "ingest", "--db", db, "--run", "demo",
                 *INGEST_TINY)
        code, out, _err = run_cli(capsys, "runs", "--db", db)
        assert code == 0
        header, row = out.splitlines()[:2]
        assert "run id" in header and "invocations" in header
        assert row.startswith("demo") and "workload:dealerships" in row
