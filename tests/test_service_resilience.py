"""Resilience under fault injection: singleflight storms, circuit
breakers, dead shards, and the overload status contract.

The invariants, per ISSUE: a thundering herd of cold queries builds
each ``(run, generation)`` snapshot exactly once; a dead shard opens
its breaker and turns into fast ``503 degraded`` answers while other
shards keep serving; overload partitions cleanly into
``200 / 429 / 503 / 504`` — and a 200 always carries the same answer
the kernels give (zero wrong answers, ever).
"""

from __future__ import annotations

import asyncio
import time

import pytest

from service_utils import (ServiceConfig, chain_graph, http_get,
                           with_server)

from repro import faults
from repro.errors import CircuitOpenError
from repro.service.breaker import (CLOSED, HALF_OPEN, OPEN, BreakerBoard,
                                   CircuitBreaker)
from repro.store.catalog import ProvenanceService, RunCatalog
from repro.store.memory import MemoryStore
from repro.store.sharded import ShardedStore, UnavailableShard, shard_of

N = 3000


@pytest.fixture(autouse=True)
def clean_faults():
    faults.clear()
    yield
    faults.clear()


def make_store(runs: int = 1):
    store = MemoryStore()
    catalog = RunCatalog(store)
    run_ids = [catalog.register(chain_graph(N)).run_id
               for _ in range(runs)]
    return store, run_ids


def config(**overrides) -> ServiceConfig:
    cfg = ServiceConfig(port=0)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


class TestCircuitBreakerUnit:
    """State machine against a fake clock — no HTTP, no sleeps."""

    def setup_method(self):
        self.now = 1000.0
        self.breaker = CircuitBreaker("dep", failure_threshold=3,
                                      reset_seconds=5.0,
                                      clock=lambda: self.now)

    def fail_once(self):
        self.breaker.before_call()
        self.breaker.record_failure()

    def test_opens_after_threshold_consecutive_failures(self):
        for _ in range(2):
            self.fail_once()
        assert self.breaker.state() == CLOSED
        self.fail_once()
        assert self.breaker.state() == OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            self.breaker.before_call()
        assert excinfo.value.retry_after_seconds <= 5.0

    def test_success_resets_the_failure_count(self):
        self.fail_once()
        self.fail_once()
        self.breaker.before_call()
        self.breaker.record_success()
        self.fail_once()
        self.fail_once()
        assert self.breaker.state() == CLOSED  # never hit 3 in a row

    def test_half_open_admits_exactly_one_probe(self):
        for _ in range(3):
            self.fail_once()
        self.now += 5.1
        assert self.breaker.state() == HALF_OPEN
        self.breaker.before_call()  # the probe
        with pytest.raises(CircuitOpenError):
            self.breaker.before_call()  # concurrent call while probing
        self.breaker.record_success()
        assert self.breaker.state() == CLOSED

    def test_failed_probe_reopens_for_another_cooldown(self):
        for _ in range(3):
            self.fail_once()
        self.now += 5.1
        self.breaker.before_call()
        self.breaker.record_failure()
        assert self.breaker.state() == OPEN
        with pytest.raises(CircuitOpenError):
            self.breaker.before_call()
        self.now += 5.1
        self.breaker.before_call()
        self.breaker.record_success()
        assert self.breaker.state() == CLOSED

    def test_board_shares_configuration_and_names(self):
        board = BreakerBoard(failure_threshold=1, reset_seconds=9.0)
        one = board.get("shard-00")
        assert board.get("shard-00") is one
        assert one.failure_threshold == 1
        one.before_call()
        one.record_failure()
        assert board.states() == {"shard-00": OPEN}
        assert board.any_open()


class TestSingleflightStorm:
    def test_latency_storm_builds_once_per_run_and_generation(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_PUSHDOWN", "0")  # force the warm path
        store, (run_id,) = make_store()
        service = ProvenanceService(store)
        graph_truth = sorted(chain_graph(N).ancestors(100))

        async def scenario(host, port, server):
            with faults.injecting("service.snapshot:latency:secs=0.08"):
                responses = await asyncio.gather(*[
                    http_get(host, port,
                             f"/v1/runs/{run_id}/ancestors?node=100&ids=1")
                    for _ in range(24)])
            return responses, server.flight.snapshot()

        responses, flight = with_server(
            service, config(max_inflight=8, queue_depth=64), scenario)
        assert [r.status for r in responses] == [200] * 24
        for response in responses:
            assert response.json["ids"] == graph_truth  # zero wrong answers
        assert flight["builds"] == 1
        assert flight["coalesced"] >= 1

    def test_invalidation_starts_a_new_flight_generation(self):
        store, (run_id,) = make_store()
        service = ProvenanceService(store)

        async def scenario(host, port, server):
            first = await http_get(host, port,
                                   f"/v1/runs/{run_id}/stats")
            service.invalidate(run_id)
            second = await http_get(host, port,
                                    f"/v1/runs/{run_id}/stats")
            return first, second, server.flight.snapshot()

        first, second, flight = with_server(service, config(), scenario)
        assert first.status == 200 and second.status == 200
        assert flight["builds"] == 2  # one per generation, not per query

    def test_timed_out_waiter_does_not_kill_the_shared_build(self):
        store, (run_id,) = make_store()
        service = ProvenanceService(store)

        async def scenario(host, port, server):
            with faults.injecting("service.snapshot:latency:secs=0.15"):
                impatient = asyncio.create_task(http_get(
                    host, port, f"/v1/runs/{run_id}/stats",
                    headers={"X-Deadline-Ms": "40"}))
                patient = asyncio.create_task(http_get(
                    host, port, f"/v1/runs/{run_id}/stats",
                    headers={"X-Deadline-Ms": "5000"}))
                return await impatient, await patient, \
                    server.flight.snapshot()

        impatient, patient, flight = with_server(service, config(),
                                                 scenario)
        assert impatient.status == 504
        assert "warming" in impatient.json["error"]
        assert patient.status == 200  # rode the same, still-alive build
        assert patient.json["node_count"] == N
        assert flight["builds"] == 1


class TestBreakerOverHTTP:
    def test_failing_builds_open_the_breaker_then_recover(self):
        store, (run_id,) = make_store()
        service = ProvenanceService(store)
        cfg = config(breaker_threshold=2, breaker_reset_seconds=0.15)

        async def scenario(host, port, server):
            out = {}
            with faults.injecting("service.snapshot:error"):
                out["failures"] = [
                    await http_get(host, port,
                                   f"/v1/runs/{run_id}/stats")
                    for _ in range(2)]
                out["rejected"] = await http_get(
                    host, port, f"/v1/runs/{run_id}/stats")
                out["health_open"] = await http_get(host, port, "/healthz")
            await asyncio.sleep(0.2)  # past the cool-down: half-open
            out["probe"] = await http_get(host, port,
                                          f"/v1/runs/{run_id}/stats")
            out["health_closed"] = await http_get(host, port, "/healthz")
            return out

        out = with_server(service, cfg, scenario)
        assert [r.status for r in out["failures"]] == [500, 500]
        rejected = out["rejected"]
        assert rejected.status == 503
        assert rejected.json["degraded"] is True
        assert int(rejected.headers["retry-after"]) >= 1
        assert out["health_open"].status == 503
        assert out["health_open"].json["status"] == "degraded"
        assert out["health_open"].json["breaker_states"]["store"] == OPEN
        # Recovery: the half-open probe succeeds and closes the breaker.
        assert out["probe"].status == 200
        assert out["health_closed"].status == 200
        assert (out["health_closed"].json["breaker_states"]["store"]
                == CLOSED)

    def test_deadline_timeouts_never_open_the_breaker(self):
        store, (run_id,) = make_store()
        service = ProvenanceService(store)
        service.graph(run_id)  # hot path: kernels see the deadline
        cfg = config(breaker_threshold=2, breaker_reset_seconds=60.0)

        async def scenario(host, port, server):
            with faults.injecting("service.handle:latency:secs=0.04"):
                responses = [await http_get(
                    host, port, f"/v1/runs/{run_id}/subgraph?node=1",
                    headers={"X-Deadline-Ms": "15"}) for _ in range(4)]
            health = await http_get(host, port, "/healthz")
            return responses, health

        responses, health = with_server(service, cfg, scenario)
        assert [r.status for r in responses] == [504] * 4
        assert health.status == 200  # 504s are our fault, not the store's
        assert health.json["breaker_states"].get("store", CLOSED) == CLOSED


class TestDeadShard:
    def make_sharded(self):
        """Two memory shards with one run each, then kill shard 1."""
        store = ShardedStore.in_memory(2)
        catalog = RunCatalog(store)
        by_shard = {}
        index = 0
        while len(by_shard) < 2:
            run_id = f"run-{index:04d}"
            index += 1
            shard = shard_of(run_id, 2)
            if shard in by_shard:
                continue
            catalog.register(chain_graph(200), run_id=run_id)
            by_shard[shard] = run_id
        store.shards[1] = UnavailableShard("dead-shard", error="killed",
                                           index=1)
        return store, by_shard

    def test_dead_shard_degrades_while_live_shard_serves(self):
        store, by_shard = self.make_sharded()
        service = ProvenanceService(store)
        cfg = config(breaker_threshold=2, breaker_reset_seconds=60.0)

        async def scenario(host, port, server):
            dead = [await http_get(
                host, port, f"/v1/runs/{by_shard[1]}/ancestors?node=10")
                for _ in range(3)]
            live = await http_get(
                host, port, f"/v1/runs/{by_shard[0]}/ancestors?node=10")
            health = await http_get(host, port, "/healthz")
            return dead, live, health

        dead, live, health = with_server(service, cfg, scenario)
        # Every dead-shard answer is an explicit degraded 503 …
        assert [r.status for r in dead] == [503] * 3
        for response in dead:
            assert response.json["degraded"] is True
        # … and after the threshold the breaker answers without even
        # touching the store (breaker name present + open).
        assert health.json["breaker_states"]["shard-01"] == OPEN
        assert health.status == 503
        # The live shard is completely unaffected.
        assert live.status == 200
        assert live.json["count"] == 10

    def test_runs_listing_is_degraded_not_failed(self):
        store, by_shard = self.make_sharded()
        service = ProvenanceService(store)

        async def scenario(host, port, server):
            return await http_get(host, port, "/runs")

        response = with_server(service, config(), scenario)
        assert response.status == 200
        assert response.json["degraded_listing"] is True
        assert len(response.json["failures"]) == 1
        listed = [entry["run_id"] for entry in response.json["runs"]]
        assert by_shard[0] in listed


class TestOverloadPartitioning:
    def test_statuses_partition_and_answers_stay_correct(self):
        store, run_ids = make_store(runs=2)
        service = ProvenanceService(store)
        for run_id in run_ids:
            service.graph(run_id)  # hot: requests go straight to kernels
        truth = {run_id: sorted(service.graph(run_id).ancestors(500))
                 for run_id in run_ids}
        cfg = config(max_inflight=2, queue_depth=2)

        async def scenario(host, port, server):
            with faults.injecting(
                    "service.handle:latency:secs=0.03:p=0.7:seed=7"):
                responses = await asyncio.gather(*[
                    http_get(host, port,
                             f"/v1/runs/{run_ids[i % 2]}/ancestors"
                             f"?node=500&ids=1",
                             headers={"X-Deadline-Ms": "120"})
                    for i in range(40)])
            return responses, server.breakers.states()

        responses, breaker_states = with_server(service, cfg, scenario)
        statuses = [r.status for r in responses]
        # The whole point: overload partitions into explicit outcomes —
        # no 500s, no hangs, no silent queueing.
        assert set(statuses) <= {200, 429, 504}
        assert statuses.count(429) > 0  # depth 2 over 40 must shed
        assert statuses.count(200) > 0
        for i, response in enumerate(responses):
            if response.status == 200:
                run_id = run_ids[i % 2]
                assert response.json["ids"] == truth[run_id]
        # Healthy store: pure overload never opens a breaker.
        assert all(state == CLOSED for state in breaker_states.values())
