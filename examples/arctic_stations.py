#!/usr/bin/env python
"""Arctic stations workflows: topologies, selectivity, provenance size.

Builds the paper's second benchmark family (Section 5.2): N
meteorological station modules in serial / parallel / dense
topologies, each recording monthly observations into state and
computing minimum air temperatures under a query *selectivity*
(all | season | month | year).  Shows how selectivity drives the
number of state tuples feeding each MIN aggregate — the paper's
graph-size mechanism behind Figures 6(b), 6(c) and 7(c).

Run:  python examples/arctic_stations.py
"""

from repro.benchmark.arctic import ArcticRun, build_arctic_workflow
from repro.graph import GraphBuilder, NodeKind, graph_stats
from repro.workflow import WorkflowExecutor

# ----------------------------------------------------------------------
# 1. Three topologies, same stations
# ----------------------------------------------------------------------
print("Topologies (6 stations):")
for topology, fan_out in (("serial", 2), ("parallel", 2), ("dense", 3)):
    workflow, modules = build_arctic_workflow(topology, 6, fan_out)
    print(f"  {workflow.name}: {len(workflow.node_labels)} nodes, "
          f"{len(workflow.edges)} edges, "
          f"order {workflow.topological_order()}")

# ----------------------------------------------------------------------
# 2. Run a dense workflow and read the overall minimum
# ----------------------------------------------------------------------
workflow, modules = build_arctic_workflow("dense", 6, 3)
builder = GraphBuilder()
executor = WorkflowExecutor(workflow, modules, builder)
run = ArcticRun(workflow, modules, selectivity="season", num_exec=3,
                history_years=2)
state = run.initial_state(executor)
outputs = run.run(executor, state)

print("\nDense fan-out-3 run (selectivity=season):")
for output in outputs:
    query = run.input_batch(output.index)["in"]["Query"][0]
    overall = output.outputs_of("out")["OverallMin"]
    print(f"  {query[0]}-{query[1]:02d}: overall min air temp "
          f"{overall.rows[0].values[0]} °C")

print(f"\nProvenance graph: {graph_stats(builder.graph)}")

# ----------------------------------------------------------------------
# 3. Selectivity drives aggregate fan-in (and graph size)
# ----------------------------------------------------------------------
print("\nState tuples feeding the largest MIN aggregate, by selectivity:")
for selectivity in ("all", "season", "month", "year"):
    wf, mods = build_arctic_workflow("parallel", 1)
    gb = GraphBuilder()
    ex = WorkflowExecutor(wf, mods, gb)
    ArcticRun(wf, mods, selectivity=selectivity, num_exec=1,
              history_years=2).run(ex)
    fan_in = max(len(gb.graph.preds(node.node_id))
                 for node in gb.graph.nodes_of_kind(NodeKind.AGG))
    print(f"  {selectivity:>7}: {fan_in:3d} tuples "
          f"(graph: {gb.graph.node_count} nodes, "
          f"{gb.graph.edge_count} edges)")
print("\n(all > season > month > year — exactly the paper's Figure 6(b) "
      "ordering mechanism)")
