#!/usr/bin/env python
"""Quickstart: fine-grained provenance for one Pig Latin query.

Runs the paper's Example 2.3 — the dealer's state-manipulation query
over a three-car inventory and one bid request — and shows the
intermediate tables, the provenance graph, and the provenance
expression of the resulting bid.

Run:  python examples/quickstart.py
"""

from repro.datamodel import FieldType, Relation, Schema
from repro.graph import GraphBuilder, graph_stats, to_dot, to_expression
from repro.piglatin import Interpreter, UDFRegistry

# ----------------------------------------------------------------------
# 1. Schemas and data (paper Example 2.3)
# ----------------------------------------------------------------------
CARS = Schema.of(("CarId", FieldType.CHARARRAY),
                 ("Model", FieldType.CHARARRAY))
SOLD = Schema.of(("CarId", FieldType.CHARARRAY),
                 ("BidId", FieldType.CHARARRAY))
REQUESTS = Schema.of(("UserId", FieldType.CHARARRAY),
                     ("BidId", FieldType.CHARARRAY),
                     ("Model", FieldType.CHARARRAY))

environment = {
    "Cars": Relation.from_values(CARS, [
        ("C1", "Accord"), ("C2", "Civic"), ("C3", "Civic")]),
    "SoldCars": Relation.from_values(SOLD, []),
    "Requests": Relation.from_values(REQUESTS, [("P1", "B1", "Civic")]),
}

# ----------------------------------------------------------------------
# 2. A black-box UDF (the paper's CalcBid)
# ----------------------------------------------------------------------
udfs = UDFRegistry()


def calc_bid(requests, num_cars, num_sold):
    """Opaque bid calculation: only its name enters the provenance."""
    request = requests.rows[0].values
    available = num_cars.rows[0].values[1] if len(num_cars) else 0
    sold = num_sold.rows[0].values[1] if len(num_sold) else 0
    return [(request[1], request[0], request[2],
             25_000 - 1_000 * available - 500 * sold)]


udfs.register("CalcBid", calc_bid, returns_bag=True,
              output_schema=Schema.of("BidId", "UserId", "Model",
                                      ("Amount", FieldType.INT)))

# ----------------------------------------------------------------------
# 3. The Pig Latin query (paper Example 2.1, verbatim)
# ----------------------------------------------------------------------
SCRIPT = """
ReqModel = FOREACH Requests GENERATE Model;
Inventory = JOIN Cars BY Model, ReqModel BY Model;
SoldInventory = JOIN Inventory BY CarId, SoldCars BY CarId;
CarsByModel = GROUP Inventory BY Model;
SoldByModel = GROUP SoldInventory BY Model;
NumCarsByModel = FOREACH CarsByModel GENERATE group AS Model,
    COUNT(Inventory) AS NumAvail;
NumSoldByModel = FOREACH SoldByModel GENERATE group AS Model,
    COUNT(SoldInventory) AS NumSold;
AllInfoByModel = COGROUP Requests BY Model, NumCarsByModel BY Model,
    NumSoldByModel BY Model;
InventoryBids = FOREACH AllInfoByModel GENERATE
    FLATTEN(CalcBid(Requests, NumCarsByModel, NumSoldByModel));
"""

# ----------------------------------------------------------------------
# 4. Execute with provenance tracking
# ----------------------------------------------------------------------
builder = GraphBuilder()
builder.begin_invocation("Mdealer1")
interpreter = Interpreter(builder, udfs)
result = interpreter.execute(SCRIPT, environment)
builder.end_invocation()

for alias in ("ReqModel", "Inventory", "CarsByModel", "NumCarsByModel",
              "InventoryBids"):
    print(f"--- {alias} ---")
    print(result.relation(alias).pretty())
    print()

# ----------------------------------------------------------------------
# 5. Inspect the provenance
# ----------------------------------------------------------------------
graph = builder.graph
print("Provenance graph:", graph_stats(graph))
bid = result.relation("InventoryBids").rows[0]
print(f"\nBid tuple {bid.values}")
print("Provenance expression:")
print(" ", to_expression(graph, bid.prov))

print("\nGraphviz rendering of the full graph (paste into `dot`):")
print(to_dot(graph)[:400], "...")
