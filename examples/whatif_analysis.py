#!/usr/bin/env python
"""What-if analysis with deletion propagation and Zoom (paper §4).

Answers the introduction's motivating questions on a real execution:

* "Was the sale of this car affected by the presence of another car
  in the dealership's lot?"  (dependency query via deletion
  propagation, Examples 4.3-4.5)
* "What would have been the bid if car X were not present?"
  (re-collapse the COUNT aggregate after deletion, Figure 3)
* Mixed-granularity views with ZoomOut / ZoomIn.

Run:  python examples/whatif_analysis.py
"""

from repro import Lipstick
from repro.benchmark.dealerships import DealershipRun, build_dealership_workflow
from repro.graph import NodeKind, to_expression
from repro.queries import ProQL, deletion_set

# ----------------------------------------------------------------------
# 1. Execute one bidding round
# ----------------------------------------------------------------------
workflow, modules = build_dealership_workflow()
lipstick = Lipstick()
executor = lipstick.executor(workflow, modules)
run = DealershipRun(num_cars=48, num_exec=2, seed=13)
run.buyer.accept_probability = 0.0  # browse only: bids, no purchase
state = run.initial_state(executor)
outputs = run.run(executor, state)
graph = lipstick.graph
processor = lipstick.query_processor()

best = outputs[-1].outputs_of("agg")["BestBids"].rows[0]
print(f"Winning bid: {best.values}")

# ----------------------------------------------------------------------
# 2. Dependency queries: does the bid depend on each candidate car?
# ----------------------------------------------------------------------
candidate_cars = (ProQL(graph)
                  .node(best.prov)
                  .ancestors()
                  .of_kind(NodeKind.TUPLE)
                  .label_contains("Cars"))
print(f"\nCars in the winning bid's ancestry: {candidate_cars.count()}")
print("Strict dependency (would the bid cease to exist without it?):")
for label in candidate_cars.labels()[:6]:
    depends = processor.depends_on_tuple(best.prov, label)
    node = ProQL(graph).of_kind(NodeKind.TUPLE).with_label(label).one()
    print(f"  {node.value}: {'YES' if depends else 'no'} "
          "(the bid exists via the aggregate either way)"
          if not depends else f"  {node.value}: YES")

# ----------------------------------------------------------------------
# 3. Deletion propagation: the Figure 3 scenario
# ----------------------------------------------------------------------
victim = candidate_cars.labels()[0]
victim_node = ProQL(graph).of_kind(NodeKind.TUPLE).with_label(victim).one()
print(f"\nPropagating deletion of car {victim_node.value} ({victim}):")
result = processor.delete_tuples(victim)
print(f"  {result.removed_count} nodes removed "
      f"(of {graph.node_count}); bid survives: "
      f"{result.survived(best.prov)}")

# The COUNT aggregate re-collapses over the survivors (Example 4.3):
count_nodes = [node for node in graph.nodes_of_kind(NodeKind.AGG)
               if node.label == "Count" and node.value and node.value > 1]
if count_nodes:
    count = count_nodes[0]
    before = len(graph.preds(count.node_id))
    after = (len(result.graph.preds(count.node_id))
             if result.graph.has_node(count.node_id) else 0)
    print(f"  a COUNT aggregate went from {before} to {after} tensors — "
          "its value can be recomputed over the survivors")

# "If no bid request were submitted the execution would not have
# occurred" (Example 4.4): delete every bid request.
requests = (ProQL(graph).of_kind(NodeKind.WORKFLOW_INPUT)
            .label_contains("Mreq").ids())
wipeout = deletion_set(graph, requests)
print(f"\nDeleting the bid requests removes {len(wipeout)} of "
      f"{graph.node_count} nodes; the bids and all computation built "
      "on them are gone:")
assert best.prov in wipeout
survivor_kinds = {graph.node(n).kind.value for n in graph.nodes
                  if n not in wipeout}
print(f"  surviving kinds include state tuples and module invocations: "
      f"{sorted(survivor_kinds)[:6]} ...")

# ----------------------------------------------------------------------
# 4. Mixed granularity: zoom out of everything except dealer 1
# ----------------------------------------------------------------------
others = sorted(graph.module_names() - {"Mdealer1"})
processor.zoom_out(others)
print(f"\nAfter ZoomOut({others}):")
print(f"  {processor.stats()}")
processor.zoom_in(others)
print("After ZoomIn (exact inverse):")
print(f"  {processor.stats()}")
