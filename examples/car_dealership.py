#!/usr/bin/env python
"""The full Car dealerships workflow (paper Figure 1) end to end.

Builds the 14-node DAG (request → and-split → 4 dealers → min
aggregator → user choice → xor → dealers again → car output), runs a
sequence of executions with module state threaded between them, and
inspects the provenance: who won, which cars influenced the winning
bid, and how fine-grained the dependencies are compared to the
coarse-grained "output depends on everything" model.

Run:  python examples/car_dealership.py
"""

from repro import Lipstick
from repro.benchmark.dealerships import DealershipRun, build_dealership_workflow
from repro.graph import NodeKind, graph_stats
from repro.queries import ProQL

# ----------------------------------------------------------------------
# 1. Build and run: a buyer who accepts as soon as the price is right
# ----------------------------------------------------------------------
workflow, modules = build_dealership_workflow()
lipstick = Lipstick()
executor = lipstick.executor(workflow, modules)

run = DealershipRun(num_cars=48, num_exec=6, seed=7)
run.buyer.accept_probability = 1.0
run.buyer.reserve_price = 10 ** 9  # any bid is acceptable
print(f"Buyer: {run.buyer}")

state = run.initial_state(executor)
outputs = run.run(executor, state)
print(f"Executions run: {run.executions_run}; purchase: {run.purchase}\n")

for output in outputs:
    best = output.outputs_of("agg")["BestBids"]
    for row in best.rows:
        dealer, bid_id, user, model, amount = row.values
        print(f"  execution {output.index}: best bid ${amount} "
              f"for {model} from {dealer} ({bid_id})")

# ----------------------------------------------------------------------
# 2. Inspect provenance: which cars affected the winning bid?
# ----------------------------------------------------------------------
graph = lipstick.graph
print(f"\nProvenance graph: {graph_stats(graph)}")

final = outputs[-1]
best_bid_row = final.outputs_of("agg")["BestBids"].rows[0]
winning_dealer = best_bid_row.values[0]

cars = (ProQL(graph)
        .node(best_bid_row.prov)
        .ancestors()
        .of_kind(NodeKind.TUPLE)
        .label_contains("Cars")
        .labels())
print(f"\n'Which cars affected the computation of this winning bid?'")
print(f"  {len(cars)} car tuples in the bid's ancestry "
      f"(out of {len(graph.nodes_of_kind(NodeKind.TUPLE))} state tuples)")

# ----------------------------------------------------------------------
# 3. Fine-grained vs coarse-grained dependency footprint (paper §5.5)
# ----------------------------------------------------------------------
print("\nPer-output dependency profiles (fine-grained):")
for profile in lipstick.dependency_report():
    if profile.fine_grained_state:
        print(f"  {profile}")
print("  (coarse-grained provenance would report 100% for each)")

# ----------------------------------------------------------------------
# 4. Query through the paper's architecture: spool to disk, reload
# ----------------------------------------------------------------------
spool = lipstick.flush()
processor = lipstick.query_processor(spool)
print(f"\nQuery Processor rebuilt the graph from {spool}:")
print(f"  {processor.stats()}")
