from setuptools import setup

setup(
    extras_require={
        # What CI installs; the library itself is stdlib-only (numpy
        # is an optional accelerator picked up when present).
        "test": [
            "pytest",
            "pytest-benchmark",
            "pytest-cov",
            "pytest-xdist",
            "hypothesis",
            "numpy",
        ],
    },
)
